"""The :class:`Optimizer` facade: rule pipeline, memoization, reporting.

One optimizer instance serves one database.  ``optimize(plan)`` runs the
rewrite pipeline (constant folding → selection merging → predicate pushdown →
join conversion → empty short-circuit → cost-based join ordering → projection
pruning) and memoizes the result per canonical plan fingerprint, guarded by
the data-version tokens of every base relation the plan scans — the same
freshness discipline as :class:`~repro.relational.plancache.PlanCache` — so a
mutated relation transparently re-optimizes while identical source queries
(e.g. the *basic* evaluator's duplicate reformulations) are planned once.

The optimizer is engine-agnostic: it rewrites logical plans before the
executor dispatches them, so the row and the columnar engine execute the same
optimized plan and keep producing byte-identical results.
"""

from __future__ import annotations

import threading
from collections import Counter, OrderedDict
from dataclasses import dataclass, field, replace

from repro.relational.algebra import Materialized, PlanNode, plan_scans
from repro.relational.optimizer.analysis import PlanAnnotator
from repro.relational.optimizer.ordering import reorder_joins
from repro.relational.optimizer.rules import (
    RewriteContext,
    convert_products,
    fold_constants,
    merge_selects,
    prune_projections,
    push_predicates,
    shortcircuit_empty,
)
from repro.relational.optimizer.statistics import StatsCatalog
from repro.relational.stats import ExecutionStats

#: Maximum merge+pushdown sweeps before declaring a fixpoint.
MAX_PUSHDOWN_SWEEPS = 8


@dataclass
class OptimizationReport:
    """The outcome of optimizing one plan."""

    plan: PlanNode
    #: rewrite rules fired, keyed by rule name
    rules: Counter = field(default_factory=Counter)
    #: join orders examined by the cost-based ordering search
    join_orders_considered: int = 0
    #: estimated cardinality of the optimized plan's root
    estimated_rows: float = 0.0
    #: data-version token per scanned base relation at optimization time
    dependencies: dict[str, int] = field(default_factory=dict)
    #: True when this report was answered from the optimizer memo
    memo_hit: bool = False

    @property
    def rules_fired(self) -> int:
        """Total number of rule applications."""
        return sum(self.rules.values())


class Optimizer:
    """Cost-based optimizer over one database's statistics.

    Parameters
    ----------
    database:
        The database plans will be executed against (supplies schemas for
        inference and, through its :attr:`~repro.relational.database.Database.stats_catalog`,
        the statistics the cost model reads).
    catalog:
        Optional explicit :class:`StatsCatalog` (defaults to the database's).
    memo_size:
        Bound of the canonical-fingerprint memo (LRU-evicted).
    reorder:
        Disable to skip the join-ordering search (rules still run).
    """

    def __init__(
        self,
        database,
        catalog: StatsCatalog | None = None,
        memo_size: int = 512,
        reorder: bool = True,
    ):
        self.database = database
        self.catalog = catalog if catalog is not None else database.stats_catalog
        self.memo_size = memo_size
        self.reorder = reorder
        self._memo: "OrderedDict[str, OptimizationReport]" = OrderedDict()
        #: version-keyed Scan infos shared by every per-pass annotator
        self._scan_cache: dict = {}
        # The memo's OrderedDict reordering/eviction is not atomic; a session
        # shares one optimizer between concurrently running queries, so memo
        # access is lock-guarded (the rewrite pipeline itself runs outside
        # the lock — two threads may redundantly optimize the same new plan,
        # which is correct, just not shared).
        self._lock = threading.RLock()

    # ------------------------------------------------------------------ #
    def optimize(self, plan: PlanNode, stats: ExecutionStats | None = None) -> PlanNode:
        """The optimized plan for ``plan`` (recording counters into ``stats``)."""
        report = self.optimize_with_report(plan)
        if stats is not None:
            stats.count_optimization(
                rules=None if report.memo_hit else report.rules,
                join_orders=0 if report.memo_hit else report.join_orders_considered,
                estimated_rows=report.estimated_rows,
                memo_hit=report.memo_hit,
            )
        return report.plan

    def optimize_with_report(self, plan: PlanNode) -> OptimizationReport:
        """Optimize ``plan`` and return the full :class:`OptimizationReport`."""
        if self._is_trivial(plan):
            # o-sharing executes thousands of single-operator plans over
            # Materialized leaves, whose unique node ids defeat the memo; no
            # rewrite rule can improve such a plan, so skip the pipeline
            # (and the memo) entirely.
            return OptimizationReport(plan=plan)
        key = plan.canonical()
        with self._lock:
            cached = self._memo.get(key)
            if cached is not None:
                if self._fresh(cached):
                    self._memo.move_to_end(key)
                    return replace(cached, memo_hit=True)
                del self._memo[key]
        report = self._run_pipeline(plan)
        with self._lock:
            self._memo[key] = report
            while len(self._memo) > self.memo_size:
                self._memo.popitem(last=False)
        return report

    def __len__(self) -> int:
        return len(self._memo)

    # ------------------------------------------------------------------ #
    @staticmethod
    def _is_trivial(plan: PlanNode) -> bool:
        """True for single-operator plans whose inputs are all materialised.

        No rule can improve them: merging/pushdown/conversion need at least
        two operators, reordering needs three units, and the empty/statistics
        rules only act on base-relation scans.
        """
        operators = 0
        for node in plan.walk():
            if isinstance(node, Materialized):
                continue
            if not node.children():
                return False  # a base-relation scan: statistics rules apply
            operators += 1
            if operators > 1:
                return False
        return True

    def _fresh(self, report: OptimizationReport) -> bool:
        for name, version in report.dependencies.items():
            try:
                if self.database.relation(name).version != version:
                    return False
            except KeyError:
                return False
        return True

    def _dependencies(self, plan: PlanNode) -> dict[str, int]:
        return self.catalog.versions({scan.relation for scan in plan_scans(plan)})

    def _run_pipeline(self, plan: PlanNode) -> OptimizationReport:
        dependencies = self._dependencies(plan)
        ctx = RewriteContext(
            PlanAnnotator(self.database, self.catalog, self._scan_cache)
        )
        try:
            optimized = self._apply_rules(plan, ctx)
        except Exception:
            # An optimizer failure must never take a query down: execute the
            # original plan and record the abort.
            ctx.trace["aborted"] += 1
            optimized = plan
        estimated = 0.0
        try:
            estimated = ctx.info(optimized).est_rows
        except Exception:
            pass
        return OptimizationReport(
            plan=optimized,
            rules=ctx.trace,
            join_orders_considered=ctx.join_orders_considered,
            estimated_rows=estimated,
            dependencies=dependencies,
        )

    def _apply_rules(self, plan: PlanNode, ctx: RewriteContext) -> PlanNode:
        plan = fold_constants(plan, ctx)
        for _ in range(MAX_PUSHDOWN_SWEEPS):
            # transform() rebuilds nodes even when no rule fires, so progress
            # is detected on the canonical form, not on object identity.
            before = plan.canonical()
            plan = merge_selects(plan, ctx)
            plan = push_predicates(plan, ctx)
            if plan.canonical() == before:
                break
        plan = convert_products(plan, ctx)
        plan = shortcircuit_empty(plan, ctx)
        if self.reorder:
            plan = reorder_joins(plan, ctx)
        plan = prune_projections(plan, ctx)
        return plan
