"""Version-keyed statistics catalog over a :class:`~repro.relational.database.Database`.

The cost-based optimizer needs three things from the data: per-relation
cardinalities, per-column value profiles (NDV, min/max, null count, a small
equi-width histogram for numeric columns) and the *type family* of a column
(all-numeric, all-string, ...).  The catalog collects all of them lazily and
keys every entry on the source relation's
:attr:`~repro.relational.relation.Relation.version` token — exactly like
:class:`~repro.relational.indexes.IndexCatalog` — so statistics survive
relabelled views of unchanged data and are transparently re-collected after a
mutation.

The type family matters for *correctness*, not just cost: the executor's hash
join matches keys with dict semantics (no string↔number coercion), while a
selection over a Cartesian product compares with
:func:`~repro.relational.types.comparable` coercion.  The Select+Product→Join
rewrite is therefore only sound when both join columns live in the same
coercion-free family, which :func:`column_family` determines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.relational.relation import Relation

# The family helpers live in repro.relational.types (the executor's runtime
# composite-key guard needs them without importing the optimizer package);
# re-exported here because they are part of the statistics vocabulary.
from repro.relational.types import (  # noqa: F401  (re-exports)
    FAMILY_EMPTY,
    FAMILY_MIXED,
    FAMILY_NUMERIC,
    FAMILY_STRING,
    column_family,
    hash_compatible,
)

#: Number of buckets in the per-column equi-width histograms.
HISTOGRAM_BUCKETS = 8


@dataclass
class ColumnStats:
    """Value profile of one column of a base relation."""

    relation: str
    attribute: str
    count: int
    nulls: int
    ndv: int
    family: str
    minimum: Any = None
    maximum: Any = None
    #: ``(low, high, count)`` equi-width buckets over the non-null numeric
    #: values; empty for non-numeric columns.
    histogram: list[tuple[float, float, int]] = field(default_factory=list)

    @property
    def non_null(self) -> int:
        """Number of non-null values."""
        return self.count - self.nulls

    # ------------------------------------------------------------------ #
    # selectivity estimation
    # ------------------------------------------------------------------ #
    def selectivity_eq(self, value: Any = None) -> float:
        """Estimated fraction of rows matching ``column = value``."""
        if self.count == 0 or self.non_null == 0:
            return 0.0
        if value is not None and self.histogram:
            numeric = _as_number(value)
            if numeric is not None:
                low, high = self.histogram[0][0], self.histogram[-1][1]
                if numeric < low or numeric > high:
                    return 0.0
        return min(1.0, (1.0 / max(1, self.ndv)) * (self.non_null / self.count))

    def selectivity_range(self, op: str, value: Any) -> float:
        """Estimated fraction of rows matching ``column <op> value``."""
        if self.count == 0 or self.non_null == 0:
            return 0.0
        fraction = None
        numeric = _as_number(value)
        if numeric is not None and self.histogram:
            below = self.fraction_below(numeric)
            if op in ("<", "<="):
                fraction = below
            elif op in (">", ">="):
                fraction = 1.0 - below
        if fraction is None:
            fraction = 1.0 / 3.0  # the classical System R default
        fraction *= self.non_null / self.count
        return min(1.0, max(0.0, fraction))

    def fraction_below(self, value: float) -> float:
        """Estimated fraction of non-null values ``<= value`` (histogram-based)."""
        if not self.histogram or self.non_null == 0:
            return 0.5
        covered = 0.0
        for low, high, count in self.histogram:
            if value >= high:
                covered += count
            elif value > low:
                width = high - low
                covered += count * ((value - low) / width if width else 1.0)
        return min(1.0, covered / self.non_null)


def collect_column_stats(relation: Relation, label: str, attribute: str) -> ColumnStats:
    """Profile one column of ``relation`` (one pass over the column data)."""
    position = relation.column_index(label)
    values = relation.column_data()[position] if len(relation) else []
    nulls = 0
    distinct: set = set()
    numeric: list[float] = []
    for value in values:
        if value is None:
            nulls += 1
            continue
        try:
            distinct.add(value)
        except TypeError:  # unhashable value: count it as its own distinct
            distinct.add(id(value))
        if isinstance(value, bool):
            numeric.append(int(value))
        elif isinstance(value, (int, float)) and value == value:
            numeric.append(value)
    stats = ColumnStats(
        relation=relation.name,
        attribute=attribute,
        count=len(values),
        nulls=nulls,
        ndv=len(distinct),
        family=column_family(values),
    )
    if numeric:
        stats.minimum, stats.maximum = min(numeric), max(numeric)
        stats.histogram = _equi_width_histogram(numeric, stats.minimum, stats.maximum)
    return stats


def _equi_width_histogram(
    values: list[float], low: float, high: float
) -> list[tuple[float, float, int]]:
    if high <= low:
        return [(low, high, len(values))]
    buckets = [0] * HISTOGRAM_BUCKETS
    width = (high - low) / HISTOGRAM_BUCKETS
    for value in values:
        index = min(HISTOGRAM_BUCKETS - 1, int((value - low) / width))
        buckets[index] += 1
    return [
        (low + i * width, low + (i + 1) * width, count)
        for i, count in enumerate(buckets)
    ]


def _as_number(value: Any) -> float | None:
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, (int, float)):
        return value
    if isinstance(value, str):
        stripped = value.strip()
        for parser in (int, float):
            try:
                return parser(stripped)
            except ValueError:
                continue
    return None


class StatsCatalog:
    """Lazy, version-keyed statistics over the relations of one database.

    Statistics are collected the first time they are asked for and cached
    under the relation's data-version token; a stale entry (the relation was
    mutated or replaced) is transparently re-collected.  :attr:`collections`
    counts the physical profiling passes, mirroring ``IndexCatalog.builds``.
    """

    def __init__(self, database):
        self.database = database
        self._row_counts: dict[str, tuple[int, int]] = {}
        self._columns: dict[tuple[str, str], tuple[ColumnStats, int]] = {}
        #: number of column-profiling passes physically executed
        self.collections: int = 0

    # ------------------------------------------------------------------ #
    def row_count(self, relation_name: str) -> int | None:
        """Cardinality of a base relation (``None`` when it is not loaded)."""
        try:
            relation = self.database.relation(relation_name)
        except KeyError:
            return None
        cached = self._row_counts.get(relation_name)
        if cached is not None and cached[1] == relation.version:
            return cached[0]
        count = len(relation)
        self._row_counts[relation_name] = (count, relation.version)
        return count

    def column(self, relation_name: str, attribute: str) -> ColumnStats | None:
        """Profile of ``relation_name.attribute`` (``None`` when unavailable)."""
        try:
            relation = self.database.relation(relation_name)
        except KeyError:
            return None
        key = (relation_name, attribute)
        cached = self._columns.get(key)
        if cached is not None and cached[1] == relation.version:
            return cached[0]
        label = (
            attribute
            if relation.has_column(attribute)
            else f"{relation_name}.{attribute}"
        )
        if not relation.has_column(label):
            return None
        stats = collect_column_stats(relation, label, attribute)
        self.collections += 1
        self._columns[key] = (stats, relation.version)
        return stats

    def versions(self, relation_names: Iterable[str]) -> dict[str, int]:
        """Current version token per loaded relation (used for memo freshness)."""
        versions: dict[str, int] = {}
        for name in relation_names:
            try:
                versions[name] = self.database.relation(name).version
            except KeyError:
                versions[name] = -1
        return versions

    def __len__(self) -> int:
        return len(self._columns)
