"""Version-keyed statistics catalog over a :class:`~repro.relational.database.Database`.

The cost-based optimizer needs three things from the data: per-relation
cardinalities, per-column value profiles (NDV, min/max, null count, a small
equi-width histogram for numeric columns) and the *type family* of a column
(all-numeric, all-string, ...).  The catalog collects all of them lazily and
keys every entry on the source relation's
:attr:`~repro.relational.relation.Relation.version` token — exactly like
:class:`~repro.relational.indexes.IndexCatalog` — so statistics survive
relabelled views of unchanged data and are transparently re-collected after a
mutation.

The type family matters for *correctness*, not just cost: the executor's hash
join matches keys with dict semantics (no string↔number coercion), while a
selection over a Cartesian product compares with
:func:`~repro.relational.types.comparable` coercion.  The Select+Product→Join
rewrite is therefore only sound when both join columns live in the same
coercion-free family, which :func:`column_family` determines.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field, replace
from typing import Any, Iterable

from repro.relational.relation import Relation

# The family helpers live in repro.relational.types (the executor's runtime
# composite-key guard needs them without importing the optimizer package);
# re-exported here because they are part of the statistics vocabulary.
from repro.relational.types import (  # noqa: F401  (re-exports)
    FAMILY_EMPTY,
    FAMILY_MIXED,
    FAMILY_NUMERIC,
    FAMILY_STRING,
    column_family,
    hash_compatible,
)

#: Number of buckets in the per-column equi-width histograms.
HISTOGRAM_BUCKETS = 8

#: Appended-row fraction (relative to the last full profile) beyond which a
#: column is re-profiled from scratch instead of delta-patched: the patched
#: histogram keeps the *old* bucket boundaries, which drift from what a fresh
#: equi-width build would choose once the delta dominates the data.
HISTOGRAM_STALENESS = 0.25


@dataclass
class ColumnStats:
    """Value profile of one column of a base relation."""

    relation: str
    attribute: str
    count: int
    nulls: int
    ndv: int
    family: str
    minimum: Any = None
    maximum: Any = None
    #: ``(low, high, count)`` equi-width buckets over the non-null numeric
    #: values; empty for non-numeric columns.
    histogram: list[tuple[float, float, int]] = field(default_factory=list)

    @property
    def non_null(self) -> int:
        """Number of non-null values."""
        return self.count - self.nulls

    # ------------------------------------------------------------------ #
    # selectivity estimation
    # ------------------------------------------------------------------ #
    def selectivity_eq(self, value: Any = None) -> float:
        """Estimated fraction of rows matching ``column = value``."""
        if self.count == 0 or self.non_null == 0:
            return 0.0
        if value is not None and self.histogram:
            numeric = _as_number(value)
            if numeric is not None:
                low, high = self.histogram[0][0], self.histogram[-1][1]
                if numeric < low or numeric > high:
                    return 0.0
        return min(1.0, (1.0 / max(1, self.ndv)) * (self.non_null / self.count))

    def selectivity_range(self, op: str, value: Any) -> float:
        """Estimated fraction of rows matching ``column <op> value``."""
        if self.count == 0 or self.non_null == 0:
            return 0.0
        fraction = None
        numeric = _as_number(value)
        if numeric is not None and self.histogram:
            below = self.fraction_below(numeric)
            if op in ("<", "<="):
                fraction = below
            elif op in (">", ">="):
                fraction = 1.0 - below
        if fraction is None:
            fraction = 1.0 / 3.0  # the classical System R default
        fraction *= self.non_null / self.count
        return min(1.0, max(0.0, fraction))

    def fraction_below(self, value: float) -> float:
        """Estimated fraction of non-null values ``<= value`` (histogram-based)."""
        if not self.histogram or self.non_null == 0:
            return 0.5
        covered = 0.0
        for low, high, count in self.histogram:
            if value >= high:
                covered += count
            elif value > low:
                width = high - low
                covered += count * ((value - low) / width if width else 1.0)
        return min(1.0, covered / self.non_null)


def collect_column_stats(relation: Relation, label: str, attribute: str) -> ColumnStats:
    """Profile one column of ``relation`` (one pass over the column data)."""
    stats, _ = _profile_column(relation, label, attribute)
    return stats


def _profile_values(values: Iterable[Any]) -> tuple[int, set, list[float]]:
    """One pass over ``values``: (nulls, distinct set, numeric values)."""
    nulls = 0
    distinct: set = set()
    numeric: list[float] = []
    for value in values:
        if value is None:
            nulls += 1
            continue
        try:
            distinct.add(value)
        except TypeError:  # unhashable value: count it as its own distinct
            distinct.add(id(value))
        if isinstance(value, bool):
            numeric.append(int(value))
        elif isinstance(value, (int, float)) and value == value:
            numeric.append(value)
    return nulls, distinct, numeric


def _profile_column(
    relation: Relation, label: str, attribute: str
) -> tuple[ColumnStats, set]:
    """Full profile of one column, plus the distinct set kept as patching aux."""
    position = relation.column_index(label)
    values = relation.column_data()[position] if len(relation) else []
    nulls, distinct, numeric = _profile_values(values)
    stats = ColumnStats(
        relation=relation.name,
        attribute=attribute,
        count=len(values),
        nulls=nulls,
        ndv=len(distinct),
        family=column_family(values),
    )
    if numeric:
        stats.minimum, stats.maximum = min(numeric), max(numeric)
        stats.histogram = _equi_width_histogram(numeric, stats.minimum, stats.maximum)
    return stats, distinct


def _merge_family(old: str, new: str) -> str:
    """The family of a concatenation, from the families of its two parts."""
    if old == new or new == FAMILY_EMPTY:
        return old
    if old == FAMILY_EMPTY:
        return new
    return FAMILY_MIXED


def _patched_histogram(
    histogram: list[tuple[float, float, int]],
    numeric: list[float],
    low: float,
    high: float,
) -> list[tuple[float, float, int]] | None:
    """``histogram`` with in-range ``numeric`` values folded in, or ``None``.

    Only legal when every value lies within ``[low, high]`` (the caller
    checks): bucket boundaries then stay exactly what a fresh equi-width
    build over the concatenated data would produce, so patching and
    rebuilding agree.
    """
    if not histogram:
        return None
    if high <= low:
        first, last, count = histogram[0]
        return [(first, last, count + len(numeric))]
    width = (high - low) / len(histogram)
    buckets = [count for _, _, count in histogram]
    for value in numeric:
        index = min(len(buckets) - 1, int((value - low) / width))
        buckets[index] += 1
    return [
        (low + i * width, low + (i + 1) * width, count)
        for i, count in enumerate(buckets)
    ]


def _equi_width_histogram(
    values: list[float], low: float, high: float
) -> list[tuple[float, float, int]]:
    if high <= low:
        return [(low, high, len(values))]
    buckets = [0] * HISTOGRAM_BUCKETS
    width = (high - low) / HISTOGRAM_BUCKETS
    for value in values:
        index = min(HISTOGRAM_BUCKETS - 1, int((value - low) / width))
        buckets[index] += 1
    return [
        (low + i * width, low + (i + 1) * width, count)
        for i, count in enumerate(buckets)
    ]


def _as_number(value: Any) -> float | None:
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, (int, float)):
        return value
    if isinstance(value, str):
        stripped = value.strip()
        for parser in (int, float):
            try:
                return parser(stripped)
            except ValueError:
                continue
    return None


class StatsCatalog:
    """Lazy, version-keyed statistics over the relations of one database.

    Statistics are collected the first time they are asked for and cached
    under the relation's data-version token; a stale entry (the relation was
    mutated or replaced) is transparently re-collected.  :attr:`collections`
    counts the physical profiling passes, mirroring ``IndexCatalog.builds``.
    """

    def __init__(self, database):
        self.database = database
        self._row_counts: dict[str, tuple[int, int]] = {}
        self._columns: dict[tuple[str, str], tuple[ColumnStats, int]] = {}
        # Patching aux per column entry: the exact distinct set, plus how
        # many appended rows have been folded in since the last full profile
        # (and the row count at that profile, for the staleness ratio).
        self._aux: dict[tuple[str, str], list] = {}
        #: number of column-profiling passes physically executed
        self.collections: int = 0
        #: number of stale entries refreshed from an append-delta chain
        #: instead of a full profiling pass
        self.incremental_refreshes: int = 0
        # Entries and aux are shared by every executor/session thread over
        # this database; reads-with-refresh must be atomic.
        self._lock = threading.RLock()

    # ------------------------------------------------------------------ #
    def row_count(self, relation_name: str) -> int | None:
        """Cardinality of a base relation (``None`` when it is not loaded)."""
        try:
            relation = self.database.relation(relation_name)
        except KeyError:
            return None
        with self._lock:
            cached = self._row_counts.get(relation_name)
            if cached is not None and cached[1] == relation.version:
                return cached[0]
            count = len(relation)
            self._row_counts[relation_name] = (count, relation.version)
            return count

    def column(self, relation_name: str, attribute: str) -> ColumnStats | None:
        """Profile of ``relation_name.attribute`` (``None`` when unavailable).

        A stale entry is refreshed *incrementally* when the relation can
        produce the append-delta chain from the profiled version: count, null
        count, min/max and the exact NDV (via the retained distinct set) are
        updated from just the appended rows, and the histogram's buckets are
        patched in place as long as the new values stay within the profiled
        range and the accumulated delta stays under
        :data:`HISTOGRAM_STALENESS`.  Anything else — updates, deletes,
        wholesale replacement, out-of-range values, too much drift — falls
        back to a full profiling pass.
        """
        try:
            relation = self.database.relation(relation_name)
        except KeyError:
            return None
        key = (relation_name, attribute)
        label = (
            attribute
            if relation.has_column(attribute)
            else f"{relation_name}.{attribute}"
        )
        if not relation.has_column(label):
            return None
        with self._lock:
            version = relation.version
            cached = self._columns.get(key)
            if cached is not None and cached[1] == version:
                return cached[0]
            if cached is not None:
                patched = self._patched_column(relation, key, label, cached, version)
                if patched is not None:
                    self._columns[key] = (patched, version)
                    self.incremental_refreshes += 1
                    return patched
            stats, distinct = _profile_column(relation, label, attribute)
            self.collections += 1
            self._columns[key] = (stats, version)
            # Reset the drift counters on every full profile: appended_before
            # restarts at 0 and the staleness ratio's base_count is the count
            # *at this profile*.  Without the reset, every append past the
            # first HISTOGRAM_STALENESS crossing would re-profile forever
            # (tests/relational/optimizer pins the rebuild cadence).
            self._aux[key] = [distinct, 0, stats.count]
            return stats

    def _patched_column(
        self,
        relation: Relation,
        key: tuple[str, str],
        label: str,
        cached: tuple[ColumnStats, int],
        version: int,
    ) -> ColumnStats | None:
        """``cached`` refreshed from the append-delta chain, or ``None``."""
        stats, profiled_version = cached
        chain = relation.deltas_between(profiled_version, version)
        if not chain or any(not delta.is_append for delta in chain):
            return None
        aux = self._aux.get(key)
        if aux is None:
            return None
        distinct, appended_before, base_count = aux
        appended = sum(len(delta.rows) for delta in chain)
        if appended_before + appended > HISTOGRAM_STALENESS * max(1, base_count):
            return None  # the delta dominates: re-profile from scratch
        position = relation.column_index(label)
        values = [row[position] for delta in chain for row in delta.rows]
        nulls, fresh_distinct, numeric = _profile_values(values)
        histogram = stats.histogram
        if numeric:
            if stats.minimum is None:
                return None  # first numeric values ever: build, don't patch
            if min(numeric) < stats.minimum or max(numeric) > stats.maximum:
                return None  # outside the profiled range: rebuild
            histogram = _patched_histogram(
                histogram, numeric, stats.minimum, stats.maximum
            )
            if histogram is None:
                return None
        distinct |= fresh_distinct
        aux[1] = appended_before + appended
        return replace(
            stats,
            count=stats.count + len(values),
            nulls=stats.nulls + nulls,
            ndv=len(distinct),
            family=_merge_family(stats.family, column_family(values)),
            histogram=histogram,
        )

    def versions(self, relation_names: Iterable[str]) -> dict[str, int]:
        """Current version token per loaded relation (used for memo freshness)."""
        versions: dict[str, int] = {}
        for name in relation_names:
            try:
                versions[name] = self.database.relation(name).version
            except KeyError:
                versions[name] = -1
        return versions

    def __len__(self) -> int:
        return len(self._columns)
