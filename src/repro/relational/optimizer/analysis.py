"""Static plan analysis: output schemas, column origins, cardinality estimates.

Every optimizer rule needs to reason about a plan *without executing it*:

* **schema inference** — the exact output column labels of every node,
  mirroring the executor's labelling (alias prefixing, projection label
  deduplication, product/join collision suffixing) through the shared helpers
  in :mod:`repro.relational.relation`, so an inferred schema can never drift
  from an executed one;
* **column origins** — which base-relation column (or materialised
  intermediate column) each output label carries, which is what connects a
  predicate's column references to the :class:`~repro.relational.optimizer.statistics.StatsCatalog`;
* **cardinality estimation** — System-R style selectivity arithmetic over the
  catalog's NDV/histogram profiles, used by the cost-based join ordering and
  reported as ``estimated_rows`` in :class:`~repro.relational.stats.ExecutionStats`.

Inference failures (a scan of an unloaded relation, an unresolvable
reference) raise :class:`InferenceError`; the optimizer treats that as "leave
the plan alone" rather than guessing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.relational.algebra import (
    Aggregate,
    Join,
    Materialized,
    PlanNode,
    Product,
    Project,
    Scan,
    Select,
    Union,
)
from repro.relational.expressions import ColumnRef, Literal
from repro.relational.optimizer.statistics import (
    ColumnStats,
    StatsCatalog,
    column_family,
)
from repro.relational.predicates import (
    And,
    Between,
    Comparison,
    FalsePredicate,
    In,
    Not,
    Or,
    Predicate,
    TruePredicate,
)
from repro.relational.relation import Relation, combine_labels, resolve_label, unique_labels

#: Default selectivities when no statistics are available (System R's table).
DEFAULT_EQ_SELECTIVITY = 0.1
DEFAULT_RANGE_SELECTIVITY = 1.0 / 3.0
DEFAULT_IN_SELECTIVITY = 0.2
DEFAULT_BETWEEN_SELECTIVITY = 0.25
DEFAULT_SELECTIVITY = 0.25


class InferenceError(Exception):
    """The plan's schema or statistics could not be inferred statically."""


class ColumnOrigin:
    """Where an output column's values come from.

    Either a ``(base relation, attribute)`` pair — resolvable against the
    statistics catalog — or a column of a materialised intermediate relation,
    whose type family is profiled directly (and cached) when asked for.
    """

    __slots__ = ("relation", "attribute", "_materialized", "_family")

    def __init__(
        self,
        relation: str | None = None,
        attribute: str | None = None,
        materialized: tuple[Relation, int] | None = None,
    ):
        self.relation = relation
        self.attribute = attribute
        self._materialized = materialized
        self._family: str | None = None

    @classmethod
    def base(cls, relation: str, attribute: str) -> "ColumnOrigin":
        return cls(relation=relation, attribute=attribute)

    @classmethod
    def intermediate(cls, relation: Relation, position: int) -> "ColumnOrigin":
        return cls(materialized=(relation, position))

    def stats(self, catalog: StatsCatalog | None) -> ColumnStats | None:
        """The catalog profile behind this origin (``None`` when unavailable)."""
        if catalog is None or self.relation is None or self.attribute is None:
            return None
        return catalog.column(self.relation, self.attribute)

    def family(self, catalog: StatsCatalog | None) -> str | None:
        """The coercion family of the column (see :func:`column_family`)."""
        if self._family is not None:
            return self._family
        if self._materialized is not None:
            relation, position = self._materialized
            self._family = column_family(relation.column_data()[position])
            return self._family
        stats = self.stats(catalog)
        if stats is not None:
            self._family = stats.family
        return self._family

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self._materialized is not None:
            return f"ColumnOrigin(<materialized #{self._materialized[1]}>)"
        return f"ColumnOrigin({self.relation}.{self.attribute})"


@dataclass
class PlanInfo:
    """Statically inferred properties of one plan node's output."""

    columns: tuple[str, ...]
    origins: dict[str, ColumnOrigin] = field(default_factory=dict)
    est_rows: float = 0.0
    #: provably empty at the statistics' data versions
    empty: bool = False

    def origin_of(self, ref: ColumnRef) -> ColumnOrigin | None:
        """Origin of the column a reference resolves to (``None`` when unknown)."""
        try:
            position = resolve_label(self.columns, ref.name, ref.qualifier)
        except KeyError:
            return None
        return self.origins.get(self.columns[position])


class PlanAnnotator:
    """Memoized bottom-up computation of :class:`PlanInfo` for a plan tree.

    The memo is identity-keyed (plan nodes are rewritten functionally, so a
    node's info never changes) and holds node references so ids stay unique.
    """

    def __init__(
        self,
        database,
        catalog: StatsCatalog | None = None,
        scan_cache: dict | None = None,
    ):
        self.database = database
        self.catalog = catalog
        self._infos: dict[int, tuple[PlanNode, PlanInfo]] = {}
        # Scan infos are version-keyed and can outlive one annotator; the
        # optimizer shares one cache across all its optimization passes.
        self._scan_cache = scan_cache if scan_cache is not None else {}

    # ------------------------------------------------------------------ #
    def info(self, node: PlanNode) -> PlanInfo:
        """The inferred properties of ``node`` (raises :class:`InferenceError`)."""
        cached = self._infos.get(id(node))
        if cached is not None:
            return cached[1]
        info = self._compute(node)
        self._infos[id(node)] = (node, info)
        return info

    def selectivity(self, predicate: Predicate, info: PlanInfo) -> float:
        """Estimated fraction of ``info``'s rows satisfying ``predicate``."""
        return predicate_selectivity(predicate, info, self.catalog)

    # ------------------------------------------------------------------ #
    def _compute(self, node: PlanNode) -> PlanInfo:
        if isinstance(node, Scan):
            return self._scan_info(node)
        if isinstance(node, Materialized):
            # A Materialized node holds a data snapshot shared across many
            # plans (o-sharing reuses one leaf in every child e-unit), so its
            # info is cached on the node itself, guarded by the relation's
            # version token.
            relation = node.relation
            cached = getattr(node, "_plan_info", None)
            if cached is not None and cached[0] == relation.version:
                return cached[1]
            origins = {
                label: ColumnOrigin.intermediate(relation, position)
                for position, label in enumerate(relation.columns)
            }
            info = PlanInfo(
                columns=tuple(relation.columns),
                origins=origins,
                est_rows=float(len(relation)),
                empty=relation.is_empty,
            )
            node._plan_info = (relation.version, info)
            return info
        if isinstance(node, Select):
            child = self.info(node.child)
            selectivity = self.selectivity(node.predicate, child)
            return PlanInfo(
                columns=child.columns,
                origins=child.origins,
                est_rows=child.est_rows * selectivity,
                empty=child.empty or isinstance(node.predicate, FalsePredicate),
            )
        if isinstance(node, Project):
            return self._project_info(node)
        if isinstance(node, (Product, Join)):
            return self._binary_info(node)
        if isinstance(node, Union):
            left, right = self.info(node.left), self.info(node.right)
            if len(left.columns) != len(right.columns):
                raise InferenceError(
                    f"UNION arity mismatch: {len(left.columns)} vs {len(right.columns)}"
                )
            return PlanInfo(
                columns=left.columns,
                origins={},
                est_rows=left.est_rows + right.est_rows,
                empty=left.empty and right.empty,
            )
        if isinstance(node, Aggregate):
            return self._aggregate_info(node)
        raise InferenceError(f"cannot infer schema of {type(node).__name__}")

    def _scan_info(self, node: Scan) -> PlanInfo:
        try:
            relation = self.database.relation(node.relation)
        except KeyError as error:
            raise InferenceError(str(error)) from error
        key = (node.relation, node.alias, relation.version)
        cached = self._scan_cache.get(key)
        if cached is not None:
            return cached
        if node.alias is None or node.alias == relation.name:
            columns = tuple(relation.columns)
        else:
            columns = tuple(
                f"{node.alias}.{label.split('.', 1)[-1]}" for label in relation.columns
            )
        origins = {
            label: ColumnOrigin.base(node.relation, label.split(".", 1)[-1])
            for label in columns
        }
        rows = len(relation)
        if self.catalog is not None:
            counted = self.catalog.row_count(node.relation)
            if counted is not None:
                rows = counted
        info = PlanInfo(
            columns=columns, origins=origins, est_rows=float(rows), empty=rows == 0
        )
        if len(self._scan_cache) > 4096:
            self._scan_cache.clear()
        self._scan_cache[key] = info
        return info

    def _project_info(self, node: Project) -> PlanInfo:
        child = self.info(node.child)
        try:
            positions = [
                resolve_label(child.columns, ref.name, ref.qualifier)
                for ref in node.columns
            ]
        except KeyError as error:
            raise InferenceError(str(error)) from error
        labels = unique_labels([child.columns[p] for p in positions])
        origins = {
            label: child.origins[child.columns[p]]
            for label, p in zip(labels, positions)
            if child.columns[p] in child.origins
        }
        est = child.est_rows
        if node.distinct:
            est = min(est, self._distinct_bound(child, positions))
        return PlanInfo(
            columns=tuple(labels), origins=origins, est_rows=est, empty=child.empty
        )

    def _binary_info(self, node: Product | Join) -> PlanInfo:
        left, right = self.info(node.left), self.info(node.right)
        columns = tuple(combine_labels(left.columns, right.columns))
        origins = dict(left.origins)
        for combined_label, right_label in zip(
            columns[len(left.columns) :], right.columns
        ):
            origin = right.origins.get(right_label)
            if origin is not None:
                origins[combined_label] = origin
        info = PlanInfo(
            columns=columns,
            origins=origins,
            est_rows=left.est_rows * right.est_rows,
            empty=left.empty or right.empty,
        )
        if isinstance(node, Join):
            selectivity = self.selectivity(node.predicate, info)
            info.est_rows *= selectivity
            info.empty = info.empty or isinstance(node.predicate, FalsePredicate)
        return info

    def _aggregate_info(self, node: Aggregate) -> PlanInfo:
        child = self.info(node.child)
        argument_label = str(node.argument) if node.argument is not None else "*"
        output_label = f"{node.function}({argument_label})"
        if not node.group_by:
            return PlanInfo(columns=(output_label,), origins={}, est_rows=1.0)
        try:
            positions = [
                resolve_label(child.columns, ref.name, ref.qualifier)
                for ref in node.group_by
            ]
        except KeyError as error:
            raise InferenceError(str(error)) from error
        labels = [child.columns[p] for p in positions]
        origins = {
            label: child.origins[label] for label in labels if label in child.origins
        }
        est = min(child.est_rows, self._distinct_bound(child, positions))
        return PlanInfo(
            columns=tuple(labels + [output_label]),
            origins=origins,
            est_rows=est,
            empty=child.empty,
        )

    def _distinct_bound(self, child: PlanInfo, positions: list[int]) -> float:
        """Upper bound on the distinct combinations of the given columns."""
        bound = 1.0
        known = False
        for position in positions:
            origin = child.origins.get(child.columns[position])
            stats = origin.stats(self.catalog) if origin is not None else None
            if stats is None:
                return child.est_rows
            known = True
            bound *= max(1, stats.ndv)
        return bound if known else child.est_rows


# --------------------------------------------------------------------------- #
# selectivity estimation
# --------------------------------------------------------------------------- #
def predicate_selectivity(
    predicate: Predicate, info: PlanInfo, catalog: StatsCatalog | None
) -> float:
    """Estimated fraction of rows satisfying ``predicate`` (always in [0, 1])."""
    if isinstance(predicate, TruePredicate):
        return 1.0
    if isinstance(predicate, FalsePredicate):
        return 0.0
    if isinstance(predicate, And):
        result = 1.0
        for operand in predicate.operands:
            result *= predicate_selectivity(operand, info, catalog)
        return result
    if isinstance(predicate, Or):
        miss = 1.0
        for operand in predicate.operands:
            miss *= 1.0 - predicate_selectivity(operand, info, catalog)
        return 1.0 - miss
    if isinstance(predicate, Not):
        return 1.0 - predicate_selectivity(predicate.operand, info, catalog)
    if isinstance(predicate, Comparison):
        return _comparison_selectivity(predicate, info, catalog)
    if isinstance(predicate, In):
        if isinstance(predicate.expr, ColumnRef):
            stats = _ref_stats(predicate.expr, info, catalog)
            if stats is not None:
                return min(1.0, len(predicate.values) * stats.selectivity_eq())
        return DEFAULT_IN_SELECTIVITY
    if isinstance(predicate, Between):
        if isinstance(predicate.expr, ColumnRef):
            stats = _ref_stats(predicate.expr, info, catalog)
            if stats is not None and stats.histogram:
                low = stats.selectivity_range("<", predicate.low)
                high = stats.selectivity_range("<=", predicate.high)
                return min(1.0, max(0.0, high - low))
        return DEFAULT_BETWEEN_SELECTIVITY
    return DEFAULT_SELECTIVITY


def _comparison_selectivity(
    cmp: Comparison, info: PlanInfo, catalog: StatsCatalog | None
) -> float:
    if cmp.is_equi_column:
        left = _ref_stats(cmp.left, info, catalog)
        right = _ref_stats(cmp.right, info, catalog)
        ndv = max(
            left.ndv if left is not None else 0,
            right.ndv if right is not None else 0,
        )
        return 1.0 / ndv if ndv > 0 else DEFAULT_EQ_SELECTIVITY
    column, literal, op = _column_versus_literal(cmp)
    if column is None:
        if cmp.op == "=":
            return DEFAULT_EQ_SELECTIVITY
        if cmp.op == "!=":
            return 1.0 - DEFAULT_EQ_SELECTIVITY
        return DEFAULT_RANGE_SELECTIVITY
    stats = _ref_stats(column, info, catalog)
    if stats is None:
        if cmp.op == "=":
            return DEFAULT_EQ_SELECTIVITY
        if cmp.op == "!=":
            return 1.0 - DEFAULT_EQ_SELECTIVITY
        return DEFAULT_RANGE_SELECTIVITY
    if op == "=":
        return stats.selectivity_eq(literal)
    if op == "!=":
        return 1.0 - stats.selectivity_eq(literal)
    return stats.selectivity_range(op, literal)


_SWAPPED_OP = {"=": "=", "!=": "!=", "<": ">", "<=": ">=", ">": "<", ">=": "<="}


def _column_versus_literal(cmp: Comparison) -> tuple[ColumnRef | None, Any, str]:
    """The ``(column, constant, column-side op)`` of a column/literal comparison."""
    if isinstance(cmp.left, ColumnRef) and isinstance(cmp.right, Literal):
        return cmp.left, cmp.right.value, cmp.op
    if isinstance(cmp.right, ColumnRef) and isinstance(cmp.left, Literal):
        return cmp.right, cmp.left.value, _SWAPPED_OP[cmp.op]
    return None, None, cmp.op


def _ref_stats(
    ref: ColumnRef, info: PlanInfo, catalog: StatsCatalog | None
) -> ColumnStats | None:
    origin = info.origin_of(ref)
    return origin.stats(catalog) if origin is not None else None
