"""``EXPLAIN`` — render a plan, its optimized form and estimated vs actual rows.

:func:`explain` takes a *source* plan (anything the executor can run), shows
the logical tree, optimizes it, shows the optimized tree with per-node
estimated cardinalities and — unless ``run=False`` — executes the optimized
plan once through a tracing executor to annotate every node with the *actual*
row count, plus a summary of operators executed and rows scanned.

Example::

    from repro.relational.optimizer import explain
    print(explain(source_plan, database))
"""

from __future__ import annotations

from time import perf_counter

from repro.relational.algebra import (
    Aggregate,
    Join,
    Materialized,
    PlanNode,
    Product,
    Project,
    Scan,
    Select,
    Union,
)
from repro.relational.columnar import ColumnBatch
from repro.relational.executor import DEFAULT_ENGINE, Executor
from repro.relational.optimizer.analysis import InferenceError, PlanAnnotator
from repro.relational.optimizer.core import Optimizer
from repro.relational.relation import Relation
from repro.relational.stats import ExecutionStats


class TracingExecutor(Executor):
    """An executor recording cardinality and wall-clock of every plan node.

    ``node_seconds`` is *inclusive* (a node's time contains its children's)
    and accumulates with ``+=``: a node the cache serves twice, or that both
    the row and columnar paths visit, charges every visit to the same entry.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.node_rows: dict[int, int] = {}
        self.node_seconds: dict[int, float] = {}

    def _evaluate(self, node: PlanNode) -> Relation:
        started = perf_counter()
        result = super()._evaluate(node)
        self.node_seconds[id(node)] = self.node_seconds.get(id(node), 0.0) + (
            perf_counter() - started
        )
        self.node_rows[id(node)] = len(result)
        return result

    def _evaluate_columnar(self, node: PlanNode) -> ColumnBatch:
        started = perf_counter()
        result = super()._evaluate_columnar(node)
        self.node_seconds[id(node)] = self.node_seconds.get(id(node), 0.0) + (
            perf_counter() - started
        )
        self.node_rows[id(node)] = len(result)
        return result


def describe_node(node: PlanNode) -> str:
    """A one-line, children-free description of a plan node."""
    if isinstance(node, Scan):
        return f"Scan {node.relation} AS {node.label}"
    if isinstance(node, Materialized):
        return f"Materialized {node.label} ({len(node.relation)} rows)"
    if isinstance(node, Select):
        return f"Select {node.predicate.canonical()}"
    if isinstance(node, Project):
        kind = "ProjectDistinct" if node.distinct else "Project"
        return f"{kind} [{', '.join(ref.display for ref in node.columns)}]"
    if isinstance(node, Product):
        return "Product"
    if isinstance(node, Join):
        return f"Join {node.predicate.canonical()}"
    if isinstance(node, Union):
        return "Union" if node.distinct else "UnionAll"
    if isinstance(node, Aggregate):
        argument = str(node.argument) if node.argument is not None else "*"
        group = ", ".join(ref.display for ref in node.group_by)
        suffix = f" GROUP BY {group}" if group else ""
        return f"Aggregate {node.function}({argument}){suffix}"
    return type(node).__name__


def render_plan(
    plan: PlanNode,
    annotator: PlanAnnotator | None = None,
    actual_rows: dict[int, int] | None = None,
    indent: str = "  ",
    actual_seconds: dict[int, float] | None = None,
) -> str:
    """An indented tree rendering with optional est./actual annotations.

    ``actual_seconds`` (from :attr:`TracingExecutor.node_seconds`) appends a
    measured per-node wall-clock — inclusive of children — after the row
    annotation, e.g. ``(est. 100, actual 42 rows, 0.31 ms)``.
    """
    lines: list[str] = []

    def render(node: PlanNode, depth: int) -> None:
        parts = [f"{indent * depth}{describe_node(node)}"]
        annotations = []
        if annotator is not None:
            try:
                annotations.append(f"est. {annotator.info(node).est_rows:,.0f}")
            except InferenceError:
                annotations.append("est. ?")
        if actual_rows is not None and id(node) in actual_rows:
            annotations.append(f"actual {actual_rows[id(node)]:,}")
        if annotations:
            suffix = " rows"
            if actual_seconds is not None and id(node) in actual_seconds:
                suffix += f", {actual_seconds[id(node)] * 1000:.2f} ms"
            parts.append(f"({', '.join(annotations)}{suffix})")
        lines.append("  ".join(parts))
        for child in node.children():
            render(child, depth + 1)

    render(plan, 0)
    return "\n".join(lines)


def explain(
    plan: PlanNode,
    database,
    optimizer: Optimizer | None = None,
    engine: str = DEFAULT_ENGINE,
    run: bool = True,
    analyze: bool = False,
) -> str:
    """Explain ``plan``: logical tree, optimized tree, estimated vs actual rows.

    Renders three sections: the logical plan as reformulation produced it
    (with estimated rows per node), the optimized plan (rules fired, join
    orders considered, estimated vs actual rows per node), and — when
    ``run`` is true — an execution summary (operators executed, rows
    scanned, rows out) obtained by actually running the optimized plan on
    ``engine`` with a tracing executor.  ``analyze=True`` (implies ``run``)
    additionally annotates every executed node with its measured wall-clock
    (inclusive of children) and appends total execution time to the summary.
    Pass an existing ``optimizer`` to reuse its memo and statistics catalog;
    ``run=False`` skips execution and the per-node "actual" annotations.
    """
    run = run or analyze
    optimizer = optimizer if optimizer is not None else Optimizer(database)
    report = optimizer.optimize_with_report(plan)
    annotator = PlanAnnotator(database, optimizer.catalog)

    sections: list[str] = []
    sections.append(f"== logical plan ({len(plan.operators())} operators) ==")
    sections.append(render_plan(plan, annotator))

    fired = ", ".join(
        f"{rule} x{count}" for rule, count in sorted(report.rules.items())
    )
    header = f"== optimized plan ({len(report.plan.operators())} operators"
    if fired:
        header += f"; rules: {fired}"
    if report.join_orders_considered:
        header += f"; join orders considered: {report.join_orders_considered}"
    header += ") =="
    sections.append(header)

    actual_rows: dict[int, int] | None = None
    actual_seconds: dict[int, float] | None = None
    summary: str | None = None
    if run:
        stats = ExecutionStats()
        tracer = TracingExecutor(database, stats, engine=engine)
        started = perf_counter()
        result = tracer.execute(report.plan)
        elapsed = perf_counter() - started
        actual_rows = tracer.node_rows
        actual_rows[id(report.plan)] = len(result)
        if analyze:
            actual_seconds = tracer.node_seconds
            actual_seconds.setdefault(id(report.plan), elapsed)
        summary = (
            f"== execution (engine={engine}) ==\n"
            f"operators executed: {stats.source_operators}, "
            f"rows scanned: {stats.rows_scanned}, "
            f"rows out: {len(result)} "
            f"(estimated {report.estimated_rows:,.0f})"
        )
        if analyze:
            summary += f"\ntotal time: {elapsed * 1000:.2f} ms"
    sections.append(
        render_plan(report.plan, annotator, actual_rows, actual_seconds=actual_seconds)
    )
    if summary is not None:
        sections.append(summary)
    return "\n".join(sections)
