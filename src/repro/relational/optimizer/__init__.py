"""Cost-based query optimizer.

The optimizer sits between reformulation and execution: evaluators hand every
source plan to an :class:`Optimizer`, which rewrites it (predicate pushdown,
Select+Product→Join conversion, projection pruning, constant folding,
empty-relation short-circuit), reorders joins with a cardinality-driven
search, and memoizes the result per canonical fingerprint guarded by data
versions.  It is engine-agnostic — the row and columnar engines execute the
same optimized plan — and is driven by a lazily collected, version-keyed
:class:`StatsCatalog` (per-relation cardinalities, per-column NDV/min-max and
small equi-width histograms).

* :mod:`repro.relational.optimizer.statistics` — the statistics catalog.
* :mod:`repro.relational.optimizer.analysis` — schema inference, column
  origins and selectivity/cardinality estimation.
* :mod:`repro.relational.optimizer.rules` — the rewrite rule engine.
* :mod:`repro.relational.optimizer.ordering` — cost-based join ordering.
* :mod:`repro.relational.optimizer.core` — the :class:`Optimizer` facade and
  its version-guarded memo.
* :mod:`repro.relational.optimizer.explain` — the ``EXPLAIN`` pretty-printer.
"""

from repro.relational.optimizer.analysis import (
    ColumnOrigin,
    InferenceError,
    PlanAnnotator,
    PlanInfo,
    predicate_selectivity,
)
from repro.relational.optimizer.core import OptimizationReport, Optimizer
from repro.relational.optimizer.explain import describe_node, explain, render_plan
from repro.relational.optimizer.ordering import DP_LIMIT, reorder_joins
from repro.relational.optimizer.rules import (
    RULE_CONSTANT_FOLD,
    RULE_EMPTY_SHORTCIRCUIT,
    RULE_JOIN_REORDER,
    RULE_PRODUCT_TO_JOIN,
    RULE_PROJECT_COLLAPSE,
    RULE_PROJECT_PRUNE,
    RULE_PUSHDOWN,
    RULE_REMOVE_TRIVIAL_SELECT,
    RULE_SELECT_INTO_JOIN,
    RULE_SELECT_MERGE,
    RewriteContext,
    fold_predicate,
)
from repro.relational.optimizer.statistics import (
    ColumnStats,
    StatsCatalog,
    column_family,
    hash_compatible,
)

__all__ = [
    "ColumnOrigin",
    "ColumnStats",
    "DP_LIMIT",
    "InferenceError",
    "OptimizationReport",
    "Optimizer",
    "PlanAnnotator",
    "PlanInfo",
    "RULE_CONSTANT_FOLD",
    "RULE_EMPTY_SHORTCIRCUIT",
    "RULE_JOIN_REORDER",
    "RULE_PRODUCT_TO_JOIN",
    "RULE_PROJECT_COLLAPSE",
    "RULE_PROJECT_PRUNE",
    "RULE_PUSHDOWN",
    "RULE_REMOVE_TRIVIAL_SELECT",
    "RULE_SELECT_INTO_JOIN",
    "RULE_SELECT_MERGE",
    "RewriteContext",
    "StatsCatalog",
    "column_family",
    "describe_node",
    "explain",
    "fold_predicate",
    "hash_compatible",
    "predicate_selectivity",
    "render_plan",
    "reorder_joins",
]
