"""Cost-based join ordering.

A *join region* is a maximal tree of Join/Product operators; its leaves (any
other node kind) are the region's *units*.  The region is flattened into
units plus the conjuncts of its join predicates, cardinalities are estimated
from the statistics catalog, and a better order is searched:

* up to :data:`DP_LIMIT` units — exhaustive dynamic programming over subsets
  (bushy trees, symmetric splits deduplicated);
* larger regions — greedy pairwise merging, preferring connected pairs.

The cost of a tree is the sum of the estimated cardinalities of its
intermediate results (the classical MQO/System-R objective for a
materialising executor).  A reordered region produces a permuted column
order, so when the rebuilt root's labels differ from the original the region
is wrapped in a restoring projection — consumers (including positional UNION
arms and o-sharing's materialised intermediates) therefore see exactly the
original schema.  Row order within the region may change; every consumer of
a reordered result aggregates answers order-insensitively.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import Iterator

from repro.relational.algebra import Join, PlanNode, Product, Project
from repro.relational.expressions import ColumnRef
from repro.relational.optimizer.analysis import InferenceError, PlanInfo
from repro.relational.optimizer.rules import (
    RULE_JOIN_REORDER,
    RewriteContext,
    _resolves_at,
)
from repro.relational.predicates import Comparison, Predicate, conjunction
from repro.relational.types import hash_compatible

#: Regions with at most this many units are ordered exhaustively.
DP_LIMIT = 5

#: Minimum relative improvement before a reordering is applied.
IMPROVEMENT_THRESHOLD = 0.999


@dataclass
class _RegionConjunct:
    """One join-predicate conjunct with the units it references."""

    index: int
    predicate: Predicate
    units: frozenset[int]
    used: bool = False


@dataclass
class _Region:
    units: list[PlanNode]
    infos: list[PlanInfo]
    conjuncts: list[_RegionConjunct]
    #: estimated-rows memo per unit subset
    rows_memo: dict[frozenset, float] = field(default_factory=dict)

    def rows(self, subset: frozenset, ctx: RewriteContext) -> float:
        cached = self.rows_memo.get(subset)
        if cached is not None:
            return cached
        rows = 1.0
        for index in subset:
            rows *= max(self.infos[index].est_rows, 0.0)
        contained = [c for c in self.conjuncts if c.units <= subset]
        if contained:
            info = self._subset_info(subset)
            for conjunct in contained:
                rows *= ctx.annotator.selectivity(conjunct.predicate, info)
        self.rows_memo[subset] = rows
        return rows

    def _subset_info(self, subset: frozenset) -> PlanInfo:
        columns: list[str] = []
        origins = {}
        for index in sorted(subset):
            info = self.infos[index]
            columns.extend(info.columns)
            origins.update(info.origins)
        return PlanInfo(columns=tuple(columns), origins=origins)


def reorder_joins(plan: PlanNode, ctx: RewriteContext) -> PlanNode:
    """Reorder every join region of ``plan`` when the cost model says so."""

    def walk(node: PlanNode) -> PlanNode:
        if isinstance(node, (Join, Product)):
            return _reorder_region(node, ctx, walk)
        children = node.children()
        if not children:
            return node
        new_children = [walk(child) for child in children]
        if all(a is b for a, b in zip(new_children, children)):
            return node
        return node.with_children(new_children)

    return walk(plan)


# --------------------------------------------------------------------------- #
def _flatten(node: PlanNode, units: list[PlanNode], predicates: list[Predicate]) -> None:
    if isinstance(node, Join):
        _flatten(node.left, units, predicates)
        _flatten(node.right, units, predicates)
        predicates.extend(node.predicate.conjuncts())
    elif isinstance(node, Product):
        _flatten(node.left, units, predicates)
        _flatten(node.right, units, predicates)
    else:
        units.append(node)


def _substitute(node: PlanNode, replacements: Iterator[PlanNode]) -> PlanNode:
    """Rebuild the region's original structure around replacement units."""
    if isinstance(node, (Join, Product)):
        left = _substitute(node.left, replacements)
        right = _substitute(node.right, replacements)
        return node.with_children([left, right])
    return next(replacements)


def _reorder_region(node: PlanNode, ctx: RewriteContext, walk) -> PlanNode:
    units: list[PlanNode] = []
    predicates: list[Predicate] = []
    _flatten(node, units, predicates)
    walked_units = [walk(unit) for unit in units]
    original = _substitute(node, iter(walked_units))

    if len(walked_units) < 3:
        return original
    try:
        infos = [ctx.info(unit) for unit in walked_units]
        original_info = ctx.info(original)
    except InferenceError:
        return original

    all_labels = [label for info in infos for label in info.columns]
    if len(set(all_labels)) != len(all_labels):
        # Colliding labels would be dedup-suffixed differently under another
        # order; leave such regions alone.
        return original

    conjuncts = _assign_conjuncts(predicates, infos)
    if conjuncts is None:
        return original
    if not _equi_conjuncts_hash_safe(conjuncts, infos, ctx):
        # Reordering changes which equality conjunct each join keys on; that
        # is only answer-preserving when every equality in the region matches
        # identically under dict-key and coerced semantics (same guard as
        # product-to-join).
        return original

    region = _Region(units=walked_units, infos=infos, conjuncts=conjuncts)
    baseline = _tree_cost(original, ctx)
    if len(walked_units) <= DP_LIMIT:
        cost, tree = _dp_search(region, ctx)
    else:
        cost, tree = _greedy_search(region, ctx)
    if tree is None or cost >= baseline * IMPROVEMENT_THRESHOLD:
        return original

    rebuilt = _build_tree(tree, region)
    if any(not conjunct.used for conjunct in region.conjuncts):
        # Cannot happen — every conjunct's units are a subset of the region's
        # units, so the root merge consumes all of them; bail out rather than
        # silently drop a predicate if the invariant is ever broken.
        return original
    try:
        rebuilt_info = ctx.info(rebuilt)
    except InferenceError:
        return original
    if rebuilt_info.columns != original_info.columns:
        restore = [ColumnRef(name=label) for label in original_info.columns]
        rebuilt = Project(rebuilt, restore)
    ctx.fire(RULE_JOIN_REORDER)
    return rebuilt


def _equi_conjuncts_hash_safe(
    conjuncts: list[_RegionConjunct], infos: list[PlanInfo], ctx: RewriteContext
) -> bool:
    """True when every equality conjunct is coercion-safe as a hash key.

    After reordering, any equality conjunct can end up as the first (hence
    unconditionally keyed) conjunct of a rebuilt join, so all of them must
    match identically under dict-key and coerced-equality semantics.
    """
    for conjunct in conjuncts:
        predicate = conjunct.predicate
        if not isinstance(predicate, Comparison) or not predicate.is_equi_column:
            continue
        families = []
        for ref in (predicate.left, predicate.right):
            origin = None
            for info in infos:
                if _resolves_at(info.columns, ref) is not None:
                    origin = info.origin_of(ref)
                    break
            family = origin.family(ctx.catalog) if origin is not None else None
            if family is None:
                return False
            families.append(family)
        if not hash_compatible(families[0], families[1]):
            return False
    return True


def _assign_conjuncts(
    predicates: list[Predicate], infos: list[PlanInfo]
) -> list[_RegionConjunct] | None:
    conjuncts: list[_RegionConjunct] = []
    for index, predicate in enumerate(predicates):
        refs = predicate.referenced_columns()
        referenced: set[int] = set()
        for ref in refs:
            homes = [
                unit_index
                for unit_index, info in enumerate(infos)
                if _resolves_at(info.columns, ref) is not None
            ]
            if len(homes) != 1:
                # Unresolvable or ambiguous reference: the region cannot be
                # safely rebuilt around this conjunct.
                return None
            referenced.add(homes[0])
        if not referenced:
            return None
        conjuncts.append(
            _RegionConjunct(index=index, predicate=predicate, units=frozenset(referenced))
        )
    return conjuncts


def _tree_cost(node: PlanNode, ctx: RewriteContext) -> float:
    """Sum of the estimated cardinalities of a region's intermediate results."""
    cost = 0.0
    stack = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, (Join, Product)):
            cost += ctx.info(current).est_rows
            stack.extend(current.children())
    return cost


# --------------------------------------------------------------------------- #
# search strategies
# --------------------------------------------------------------------------- #
def _dp_search(region: _Region, ctx: RewriteContext):
    """Exhaustive bushy-tree DP over unit subsets (≤ :data:`DP_LIMIT` units)."""
    n = len(region.units)
    best: dict[frozenset, tuple[float, object]] = {
        frozenset({i}): (0.0, i) for i in range(n)
    }
    for size in range(2, n + 1):
        for subset_tuple in combinations(range(n), size):
            subset = frozenset(subset_tuple)
            rows = region.rows(subset, ctx)
            best_cost, best_tree = float("inf"), None
            anchor = min(subset)
            members = sorted(subset - {anchor})
            for mask in range(1 << len(members)):
                left = frozenset(
                    {anchor} | {members[i] for i in range(len(members)) if mask >> i & 1}
                )
                right = subset - left
                if not right:
                    continue
                ctx.join_orders_considered += 1
                cost = best[left][0] + best[right][0] + rows
                if cost < best_cost:
                    best_cost = cost
                    best_tree = (best[left][1], best[right][1])
            best[subset] = (best_cost, best_tree)
    return best[frozenset(range(n))]


def _greedy_search(region: _Region, ctx: RewriteContext):
    """Greedy pairwise merging for large regions (prefer connected pairs)."""
    n = len(region.units)
    forest: list[tuple[frozenset, object]] = [(frozenset({i}), i) for i in range(n)]
    cost = 0.0
    while len(forest) > 1:
        best_index_pair = None
        best_rows = float("inf")
        best_connected = False
        for i, j in combinations(range(len(forest)), 2):
            merged = forest[i][0] | forest[j][0]
            connected = any(
                conjunct.units <= merged
                and not conjunct.units <= forest[i][0]
                and not conjunct.units <= forest[j][0]
                for conjunct in region.conjuncts
            )
            rows = region.rows(merged, ctx)
            ctx.join_orders_considered += 1
            better = (connected and not best_connected) or (
                connected == best_connected and rows < best_rows
            )
            if better:
                best_index_pair = (i, j)
                best_rows = rows
                best_connected = connected
        i, j = best_index_pair
        merged_set = forest[i][0] | forest[j][0]
        merged_tree = (forest[i][1], forest[j][1])
        cost += best_rows
        forest = [
            entry for k, entry in enumerate(forest) if k not in (i, j)
        ] + [(merged_set, merged_tree)]
    return cost, forest[0][1]


def _build_tree(tree, region: _Region) -> PlanNode:
    """Turn a search result back into a Join/Product tree."""
    plan, _ = _build_subtree(tree, region)
    return plan


def _build_subtree(tree, region: _Region):
    if isinstance(tree, int):
        return region.units[tree], frozenset({tree})
    left_plan, left_set = _build_subtree(tree[0], region)
    right_plan, right_set = _build_subtree(tree[1], region)
    merged = left_set | right_set
    applicable = [
        conjunct
        for conjunct in region.conjuncts
        if not conjunct.used and conjunct.units <= merged
    ]
    if applicable:
        for conjunct in applicable:
            conjunct.used = True
        predicate = conjunction(
            [conjunct.predicate for conjunct in sorted(applicable, key=lambda c: c.index)]
        )
        return Join(left_plan, right_plan, predicate), merged
    return Product(left_plan, right_plan), merged
