"""Rewrite rules over :class:`~repro.relational.algebra.PlanNode` trees.

Each rule is a semantics-preserving rewrite: for every database state the
rewritten plan produces a relation with the same column labels and the same
row multiset as the original (row *order* is also preserved by every rule
except join reordering, whose callers only consume order-insensitive
answers).  The rules:

``constant-fold``
    Literal-versus-literal comparisons become TRUE/FALSE; AND/OR/NOT trees
    simplify; contradictory equality conjuncts on one column become FALSE.
``remove-trivial-select``
    ``Select[TRUE](x) → x``.
``select-merge``
    ``Select[p](Select[q](x)) → Select[q AND p](x)`` — one pass, one operator.
``predicate-pushdown``
    Single-side conjuncts of a selection over a Product/Join move into that
    side; selections push through Union arms (when positions align) and
    through Projections (when references resolve identically below).
``select-into-join``
    ``Select[p](Join[q](L,R)) → Join[q AND p](L,R)`` when every new equality
    conjunct the hash join would pick up is hash-compatible.
``product-to-join``
    ``Select[p](Product(L,R)) → Join[p](L,R)`` when ``p`` spans both sides
    and every equality conjunct the hash join would use is hash-compatible
    (same coercion family on both sides — see
    :mod:`repro.relational.optimizer.statistics`).
``empty-shortcircuit``
    Subtrees that are provably empty at the current data versions (scans of
    empty relations, FALSE selections, products/joins with an empty input)
    collapse into empty :class:`~repro.relational.algebra.Materialized`
    leaves, which execute zero operators.
``project-prune`` / ``project-collapse``
    Identity projections disappear; stacked projections merge into one.
"""

from __future__ import annotations

from collections import Counter

from repro.relational.algebra import (
    Aggregate,
    Join,
    Materialized,
    PlanNode,
    Product,
    Project,
    Scan,
    Select,
    Union,
)
from repro.relational.expressions import ColumnRef, Literal
from repro.relational.optimizer.analysis import InferenceError, PlanAnnotator, PlanInfo
from repro.relational.optimizer.statistics import hash_compatible
from repro.relational.predicates import (
    And,
    Comparison,
    FalsePredicate,
    Not,
    Or,
    Predicate,
    TruePredicate,
    conjunction,
)
from repro.relational.relation import Relation, resolve_label

RULE_CONSTANT_FOLD = "constant-fold"
RULE_REMOVE_TRIVIAL_SELECT = "remove-trivial-select"
RULE_SELECT_MERGE = "select-merge"
RULE_PUSHDOWN = "predicate-pushdown"
RULE_SELECT_INTO_JOIN = "select-into-join"
RULE_PRODUCT_TO_JOIN = "product-to-join"
RULE_EMPTY_SHORTCIRCUIT = "empty-shortcircuit"
RULE_PROJECT_PRUNE = "project-prune"
RULE_PROJECT_COLLAPSE = "project-collapse"
RULE_JOIN_REORDER = "join-reorder"


class RewriteContext:
    """Shared state of one optimization pass: annotator, catalog, rule trace."""

    def __init__(self, annotator: PlanAnnotator):
        self.annotator = annotator
        self.catalog = annotator.catalog
        self.trace: Counter = Counter()
        self.join_orders_considered = 0

    def info(self, node: PlanNode) -> PlanInfo:
        return self.annotator.info(node)

    def fire(self, rule: str, times: int = 1) -> None:
        self.trace[rule] += times


# --------------------------------------------------------------------------- #
# constant folding
# --------------------------------------------------------------------------- #
def fold_predicate(predicate: Predicate) -> Predicate:
    """Simplify a predicate without looking at any data."""
    if isinstance(predicate, And):
        operands: list[Predicate] = []
        for operand in predicate.operands:
            folded = fold_predicate(operand)
            if isinstance(folded, FalsePredicate):
                return FalsePredicate()
            if isinstance(folded, TruePredicate):
                continue
            if isinstance(folded, And):
                operands.extend(folded.operands)
            else:
                operands.append(folded)
        if _contradictory_equalities(operands):
            return FalsePredicate()
        return conjunction(operands)
    if isinstance(predicate, Or):
        operands = []
        for operand in predicate.operands:
            folded = fold_predicate(operand)
            if isinstance(folded, TruePredicate):
                return TruePredicate()
            if isinstance(folded, FalsePredicate):
                continue
            operands.append(folded)
        if not operands:
            return FalsePredicate()
        if len(operands) == 1:
            return operands[0]
        return Or(*operands)
    if isinstance(predicate, Not):
        folded = fold_predicate(predicate.operand)
        if isinstance(folded, TruePredicate):
            return FalsePredicate()
        if isinstance(folded, FalsePredicate):
            return TruePredicate()
        return Not(folded)
    if isinstance(predicate, Comparison):
        if isinstance(predicate.left, Literal) and isinstance(predicate.right, Literal):
            # Literal-only comparisons ignore the (relation, row) arguments.
            return TruePredicate() if predicate.evaluate(None, None) else FalsePredicate()
    return predicate


def _contradictory_equalities(conjuncts: list[Predicate]) -> bool:
    """True when two conjuncts pin one column to incompatible constants."""
    pinned: dict[tuple[str | None, str], Literal] = {}
    for conjunct in conjuncts:
        if not isinstance(conjunct, Comparison) or conjunct.op != "=":
            continue
        if isinstance(conjunct.left, ColumnRef) and isinstance(conjunct.right, Literal):
            ref, literal = conjunct.left, conjunct.right
        elif isinstance(conjunct.right, ColumnRef) and isinstance(conjunct.left, Literal):
            ref, literal = conjunct.right, conjunct.left
        else:
            continue
        key = (ref.qualifier, ref.name)
        previous = pinned.get(key)
        if previous is None:
            pinned[key] = literal
        elif not Comparison(previous, "=", literal).evaluate(None, None):
            return True
    return False


def fold_constants(plan: PlanNode, ctx: RewriteContext) -> PlanNode:
    """Fold predicates everywhere; drop selections that became TRUE."""

    def visit(node: PlanNode) -> PlanNode:
        if isinstance(node, Select):
            folded = fold_predicate(node.predicate)
            if folded.canonical() != node.predicate.canonical():
                ctx.fire(RULE_CONSTANT_FOLD)
            if isinstance(folded, TruePredicate):
                ctx.fire(RULE_REMOVE_TRIVIAL_SELECT)
                return node.child
            if folded is not node.predicate:
                return Select(node.child, folded)
            return node
        if isinstance(node, Join):
            folded = fold_predicate(node.predicate)
            if folded.canonical() != node.predicate.canonical():
                ctx.fire(RULE_CONSTANT_FOLD)
                return Join(node.left, node.right, folded)
            return node
        return node

    return plan.transform(visit)


# --------------------------------------------------------------------------- #
# selection merging and pushdown
# --------------------------------------------------------------------------- #
def merge_selects(plan: PlanNode, ctx: RewriteContext) -> PlanNode:
    """Collapse stacked selections into one conjunctive selection."""

    def visit(node: PlanNode) -> PlanNode:
        if isinstance(node, Select) and isinstance(node.child, Select):
            inner = node.child
            ctx.fire(RULE_SELECT_MERGE)
            # The inner predicate is evaluated first, matching the original
            # execution order (AND short-circuits left to right).
            return Select(inner.child, And(inner.predicate, node.predicate))
        return node

    return plan.transform(visit)


def _resolves_at(columns: tuple[str, ...], ref: ColumnRef) -> int | None:
    try:
        return resolve_label(columns, ref.name, ref.qualifier)
    except KeyError:
        return None


def _classify_conjunct(
    conjunct: Predicate,
    combined: PlanInfo,
    left: PlanInfo,
    right: PlanInfo,
) -> str:
    """``"left"``/``"right"`` when the conjunct reads one input only, else ``"rest"``.

    A conjunct is pushable to a side only when every reference resolves to
    the *same column* inside that side as it does against the combined
    schema, so pushed evaluation reads exactly the values it read before.
    """
    refs = conjunct.referenced_columns()
    if not refs:
        return "rest"
    sides: set[str] = set()
    for ref in refs:
        position = _resolves_at(combined.columns, ref)
        if position is None:
            return "rest"
        if position < len(left.columns):
            if _resolves_at(left.columns, ref) != position:
                return "rest"
            sides.add("left")
        else:
            if _resolves_at(right.columns, ref) != position - len(left.columns):
                return "rest"
            sides.add("right")
    return sides.pop() if len(sides) == 1 else "rest"


def push_predicates(plan: PlanNode, ctx: RewriteContext) -> PlanNode:
    """One bottom-up pushdown sweep (callers iterate to a fixpoint)."""

    def visit(node: PlanNode) -> PlanNode:
        if not isinstance(node, Select):
            return node
        child = node.child
        if isinstance(child, (Product, Join)):
            return _push_into_binary(node, child, ctx)
        if isinstance(child, Union):
            return _push_into_union(node, child, ctx)
        if isinstance(child, Project):
            return _push_through_project(node, child, ctx)
        return node

    return plan.transform(visit)


def _push_into_binary(node: Select, child: Product | Join, ctx: RewriteContext) -> PlanNode:
    try:
        left_info = ctx.info(child.left)
        right_info = ctx.info(child.right)
        combined_info = ctx.info(child)
    except InferenceError:
        return node
    left_conjuncts: list[Predicate] = []
    right_conjuncts: list[Predicate] = []
    rest: list[Predicate] = []
    for conjunct in node.predicate.conjuncts():
        side = _classify_conjunct(conjunct, combined_info, left_info, right_info)
        if side == "left":
            left_conjuncts.append(conjunct)
        elif side == "right":
            right_conjuncts.append(conjunct)
        else:
            rest.append(conjunct)
    if not left_conjuncts and not right_conjuncts:
        return node
    ctx.fire(RULE_PUSHDOWN, len(left_conjuncts) + len(right_conjuncts))
    new_left = (
        Select(child.left, conjunction(left_conjuncts)) if left_conjuncts else child.left
    )
    new_right = (
        Select(child.right, conjunction(right_conjuncts))
        if right_conjuncts
        else child.right
    )
    rebuilt = child.with_children([new_left, new_right])
    if rest:
        return Select(rebuilt, conjunction(rest))
    return rebuilt


def _push_into_union(node: Select, child: Union, ctx: RewriteContext) -> PlanNode:
    # A selection above a union resolves references against the *left* arm's
    # labels while filtering rows of both arms positionally; pushing a copy
    # into each arm is only sound when every reference lands on the same
    # position in both arms.
    try:
        left_info = ctx.info(child.left)
        right_info = ctx.info(child.right)
    except InferenceError:
        return node
    for ref in node.predicate.referenced_columns():
        left_position = _resolves_at(left_info.columns, ref)
        right_position = _resolves_at(right_info.columns, ref)
        if left_position is None or left_position != right_position:
            return node
    ctx.fire(RULE_PUSHDOWN)
    return Union(
        Select(child.left, node.predicate),
        Select(child.right, node.predicate),
        child.distinct,
    )


def _push_through_project(node: Select, child: Project, ctx: RewriteContext) -> PlanNode:
    # Filtering commutes with (distinct) projection when every reference
    # resolves below the projection to the same column it projects.
    try:
        project_info = ctx.info(child)
        input_info = ctx.info(child.child)
        positions = [
            resolve_label(input_info.columns, ref.name, ref.qualifier)
            for ref in child.columns
        ]
    except (InferenceError, KeyError):
        return node
    for ref in node.predicate.referenced_columns():
        above = _resolves_at(project_info.columns, ref)
        below = _resolves_at(input_info.columns, ref)
        if above is None or below is None or positions[above] != below:
            return node
        if project_info.columns[above] != input_info.columns[below]:
            return node
    ctx.fire(RULE_PUSHDOWN)
    return Project(Select(child.child, node.predicate), child.columns, child.distinct)


# --------------------------------------------------------------------------- #
# join conversion
# --------------------------------------------------------------------------- #
def _runtime_equi_sides(
    conjunct: Predicate, left: PlanInfo, right: PlanInfo
) -> tuple[ColumnRef, ColumnRef] | None:
    """The (left ref, right ref) the executor's hash join would resolve.

    Mirrors ``Executor._find_hash_join``: an equality between two column
    references, one resolvable in each input (either orientation).
    """
    if not isinstance(conjunct, Comparison) or not conjunct.is_equi_column:
        return None
    first, second = conjunct.left, conjunct.right
    if _resolves_at(left.columns, first) is not None and (
        _resolves_at(right.columns, second) is not None
    ):
        return first, second
    if _resolves_at(left.columns, second) is not None and (
        _resolves_at(right.columns, first) is not None
    ):
        return second, first
    return None


def _hash_keys_compatible(
    conjuncts: list[Predicate],
    left: PlanInfo,
    right: PlanInfo,
    ctx: RewriteContext,
) -> bool:
    """True when every equality the hash join would key on is coercion-safe.

    The hash join matches keys with dict semantics while a filtered product
    compares with string↔number coercion; the rewrite is only sound when the
    two agree, i.e. both key columns live in the same coercion-free family.
    """
    for conjunct in conjuncts:
        sides = _runtime_equi_sides(conjunct, left, right)
        if sides is None:
            continue
        left_ref, right_ref = sides
        left_origin = left.origin_of(left_ref)
        right_origin = right.origin_of(right_ref)
        if left_origin is None or right_origin is None:
            return False
        left_family = left_origin.family(ctx.catalog)
        right_family = right_origin.family(ctx.catalog)
        if left_family is None or right_family is None:
            return False
        if not hash_compatible(left_family, right_family):
            return False
    return True


def convert_products(plan: PlanNode, ctx: RewriteContext) -> PlanNode:
    """``Select(Product) → Join`` and ``Select(Join) → Join`` conversions."""

    def visit(node: PlanNode) -> PlanNode:
        if not isinstance(node, Select):
            return node
        child = node.child
        if isinstance(child, (Product, Join)):
            try:
                left_info = ctx.info(child.left)
                right_info = ctx.info(child.right)
            except InferenceError:
                return node
            conjuncts = node.predicate.conjuncts()
            spans = any(
                _classify_conjunct(conjunct, ctx.info(child), left_info, right_info)
                == "rest"
                and conjunct.referenced_columns()
                for conjunct in conjuncts
            )
            if not spans:
                return node
            if not _hash_keys_compatible(conjuncts, left_info, right_info, ctx):
                return node
            if isinstance(child, Product):
                ctx.fire(RULE_PRODUCT_TO_JOIN)
                return Join(child.left, child.right, node.predicate)
            ctx.fire(RULE_SELECT_INTO_JOIN)
            return Join(child.left, child.right, And(child.predicate, node.predicate))
        return node

    return plan.transform(visit)


# --------------------------------------------------------------------------- #
# empty-relation short circuit
# --------------------------------------------------------------------------- #
def shortcircuit_empty(plan: PlanNode, ctx: RewriteContext) -> PlanNode:
    """Collapse provably-empty subtrees into empty materialised leaves."""

    def empty_leaf(info: PlanInfo, label: str) -> Materialized:
        return Materialized(Relation(info.columns, []), label=label)

    def visit(node: PlanNode) -> PlanNode:
        if isinstance(node, Materialized):
            return node
        try:
            info = ctx.info(node)
        except InferenceError:
            return node
        if info.empty:
            ctx.fire(RULE_EMPTY_SHORTCIRCUIT)
            return empty_leaf(info, "empty")
        if isinstance(node, Union) and not node.distinct:
            # UNION ALL with an empty arm degenerates to the other arm; the
            # left arm additionally carries the output labels, so the right
            # arm can only take over when its labels already match.
            try:
                left_info, right_info = ctx.info(node.left), ctx.info(node.right)
            except InferenceError:
                return node
            if right_info.empty:
                ctx.fire(RULE_EMPTY_SHORTCIRCUIT)
                return node.left
            if left_info.empty and left_info.columns == right_info.columns:
                ctx.fire(RULE_EMPTY_SHORTCIRCUIT)
                return node.right
        return node

    return plan.transform(visit)


# --------------------------------------------------------------------------- #
# projection pruning
# --------------------------------------------------------------------------- #
def prune_projections(plan: PlanNode, ctx: RewriteContext) -> PlanNode:
    """Remove identity projections and collapse stacked projections."""

    def visit(node: PlanNode) -> PlanNode:
        if not isinstance(node, Project):
            return node
        try:
            child_info = ctx.info(node.child)
            positions = [
                resolve_label(child_info.columns, ref.name, ref.qualifier)
                for ref in node.columns
            ]
        except (InferenceError, KeyError):
            return node
        if not node.distinct and positions == list(range(len(child_info.columns))):
            ctx.fire(RULE_PROJECT_PRUNE)
            return node.child
        inner = node.child
        if isinstance(inner, Project) and not inner.distinct:
            try:
                input_info = ctx.info(inner.child)
                inner_positions = [
                    resolve_label(input_info.columns, ref.name, ref.qualifier)
                    for ref in inner.columns
                ]
            except (InferenceError, KeyError):
                return node
            if len(set(inner_positions)) != len(inner_positions):
                # The inner projection repeats a column, so its output labels
                # carry dedup suffixes the collapsed form would not reproduce.
                return node
            new_refs = [
                ColumnRef(name=input_info.columns[inner_positions[p]])
                for p in positions
            ]
            ctx.fire(RULE_PROJECT_COLLAPSE)
            return Project(inner.child, new_refs, node.distinct)
        return node

    return plan.transform(visit)
