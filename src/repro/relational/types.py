"""Value domains used by the relational engine.

The engine is dynamically typed (rows hold plain Python values), but schemas
carry a declared :class:`DataType` per attribute so that generators can
produce appropriate values and so that comparisons can coerce literals
consistently (e.g. a selection constant ``"42"`` compared against an INTEGER
column).
"""

from __future__ import annotations

import enum
from typing import Any


class DataType(enum.Enum):
    """Declared type of an attribute."""

    INTEGER = "integer"
    FLOAT = "float"
    STRING = "string"
    DATE = "date"
    BOOLEAN = "boolean"

    def coerce(self, value: Any) -> Any:
        """Coerce ``value`` into this domain.

        ``None`` is passed through unchanged (SQL-style missing value).
        Raises :class:`ValueError` when the value cannot be represented in
        the domain.
        """
        if value is None:
            return None
        if self is DataType.INTEGER:
            return int(value)
        if self is DataType.FLOAT:
            return float(value)
        if self is DataType.STRING:
            return str(value)
        if self is DataType.DATE:
            return str(value)
        if self is DataType.BOOLEAN:
            if isinstance(value, str):
                lowered = value.strip().lower()
                if lowered in ("true", "t", "1", "yes"):
                    return True
                if lowered in ("false", "f", "0", "no"):
                    return False
                raise ValueError(f"cannot coerce {value!r} to BOOLEAN")
            return bool(value)
        raise ValueError(f"unknown data type {self!r}")  # pragma: no cover

    @property
    def python_type(self) -> type:
        """The Python type used to store values of this domain."""
        return {
            DataType.INTEGER: int,
            DataType.FLOAT: float,
            DataType.STRING: str,
            DataType.DATE: str,
            DataType.BOOLEAN: bool,
        }[self]


def infer_type(value: Any) -> DataType:
    """Infer the :class:`DataType` of a Python value.

    Used by CSV import and by :meth:`Relation.from_rows` when no schema is
    supplied.
    """
    if isinstance(value, bool):
        return DataType.BOOLEAN
    if isinstance(value, int):
        return DataType.INTEGER
    if isinstance(value, float):
        return DataType.FLOAT
    return DataType.STRING


#: Coercion families of column values (see :func:`column_family`).
FAMILY_NUMERIC = "numeric"
FAMILY_STRING = "string"
FAMILY_EMPTY = "empty"
FAMILY_MIXED = "mixed"


def column_family(values) -> str:
    """The coercion family of a column's non-null values.

    ``"numeric"`` (int/float/bool) and ``"string"`` are the two families the
    :func:`comparable` coercion leaves alone; within one family, dict-key
    equality (hash join) and coerced equality (predicate evaluation) agree.
    ``"mixed"`` means coercion could differ from hashing and ``"empty"``
    means there is nothing to disagree about.
    """
    saw_numeric = saw_string = False
    saw_value = False
    for value in values:
        if value is None:
            continue
        saw_value = True
        if isinstance(value, (int, float)):  # bool is an int subclass
            saw_numeric = True
            if saw_string:
                return FAMILY_MIXED
        elif isinstance(value, str):
            saw_string = True
            if saw_numeric:
                return FAMILY_MIXED
        else:
            return FAMILY_MIXED
    if not saw_value:
        return FAMILY_EMPTY
    return FAMILY_NUMERIC if saw_numeric else FAMILY_STRING


def hash_compatible(left_family: str, right_family: str) -> bool:
    """True when hash-key matching equals coerced equality for the pair."""
    if FAMILY_MIXED in (left_family, right_family):
        return False
    if FAMILY_EMPTY in (left_family, right_family):
        return True
    return left_family == right_family


def comparable(left: Any, right: Any) -> tuple[Any, Any]:
    """Return a pair of values coerced so they can be compared.

    The engine compares heterogeneous values that arise when a query constant
    is written as a string but the column is numeric (and vice versa).  The
    rules are deliberately small:

    * identical types compare directly;
    * int/float compare numerically;
    * a numeric value and a string compare by parsing the string as a number
      when possible, otherwise both sides compare as strings.
    """
    if type(left) is type(right):
        return left, right
    if isinstance(left, (int, float)) and isinstance(right, (int, float)):
        return left, right
    if isinstance(left, (int, float)) and isinstance(right, str):
        parsed = _try_parse_number(right)
        if parsed is not None:
            return left, parsed
        return str(left), right
    if isinstance(right, (int, float)) and isinstance(left, str):
        parsed = _try_parse_number(left)
        if parsed is not None:
            return parsed, right
        return left, str(right)
    return str(left), str(right)


def _try_parse_number(text: str) -> float | int | None:
    """Parse ``text`` as an int or float, returning ``None`` on failure."""
    stripped = text.strip()
    try:
        return int(stripped)
    except ValueError:
        pass
    try:
        return float(stripped)
    except ValueError:
        return None
