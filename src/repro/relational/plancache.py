"""Plan-result cache and materialization policies for shared execution.

This is the machinery that turns the e-MQO *global plan* (and the batch
serving API) into actual shared work: a :class:`PlanCache` maps the canonical
fingerprint of a sub-plan to its already-computed result
:class:`~repro.relational.relation.Relation`, and a
:class:`MaterializationPolicy` decides *which* sub-plans the executor should
look up and store — the classical MQO materialisation choice of Roy et al. /
Zhou et al., rather than blind memoisation of every node.

The cache is bounded (LRU), keeps hit/miss/eviction statistics, and stays
correct under data changes: every entry records which base relations its plan
scans, and invalidation hooks tied to
:meth:`~repro.relational.database.Database.set_relation` and
:meth:`~repro.relational.indexes.IndexCatalog.invalidate` drop exactly the
entries that depend on a mutated relation.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.relational.algebra import Materialized, PlanNode, Scan
from repro.relational.relation import Relation


@dataclass
class PlanCacheStats:
    """Counters describing how effective a :class:`PlanCache` has been."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0
    #: operators that cache hits avoided executing
    operators_saved: int = 0

    @property
    def lookups(self) -> int:
        """Total number of cache probes."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of probes answered from the cache (0.0 when unused)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def snapshot(self) -> dict:
        """A plain-dict snapshot for reports and benchmark tables."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "operators_saved": self.operators_saved,
            "hit_rate": round(self.hit_rate, 4),
        }


@dataclass
class CachedPlan:
    """One cache entry: a sub-plan's result plus its bookkeeping."""

    key: str
    relation: Relation
    #: number of operators executing the plan would cost (the saving per hit)
    operator_count: int
    #: names of the base relations the plan scans (invalidation dependencies)
    dependencies: frozenset[str] = field(default_factory=frozenset)
    #: data-version token of each dependency at store time (staleness check)
    dependency_versions: dict[str, int] = field(default_factory=dict)


def plan_cost(node: PlanNode) -> int:
    """Operators the executor would count to evaluate ``node`` from scratch.

    Every non-:class:`Materialized` node is counted once — this matches
    :class:`~repro.relational.executor.Executor`, which records scans as
    operators too.
    """
    return sum(1 for child in node.walk() if not isinstance(child, Materialized))


def plan_dependencies(node: PlanNode) -> frozenset[str]:
    """Names of the base relations ``node`` reads (its invalidation keys)."""
    return frozenset(
        child.relation for child in node.walk() if isinstance(child, Scan)
    )


class PlanCache:
    """Bounded LRU cache of sub-plan results keyed by canonical fingerprint.

    ``maxsize=None`` disables the bound (used by the legacy memoizing
    executor); any other value evicts the least recently used entry once the
    cache is full.  Call :meth:`attach` to subscribe the cache to a
    database's mutation events so that stale entries can never be served.

    Lookups, stores and invalidations are guarded by a re-entrant lock so
    one cache can serve the batch evaluator's concurrently running queries
    (the LRU reordering and the stats counters are not otherwise atomic).
    """

    def __init__(self, maxsize: int | None = 1024):
        if maxsize is not None and maxsize <= 0:
            raise ValueError("maxsize must be positive (or None for unbounded)")
        self.maxsize = maxsize
        self.stats = PlanCacheStats()
        self._entries: "OrderedDict[str, CachedPlan]" = OrderedDict()
        self._attached: list = []
        self._lock = threading.RLock()

    # ------------------------------------------------------------------ #
    # lookup / store
    # ------------------------------------------------------------------ #
    def get(self, key: str, database=None) -> CachedPlan | None:
        """The cached entry for ``key`` (recording a hit or miss).

        With a ``database``, the entry's recorded dependency versions are
        checked against the stored relations' current
        :attr:`~repro.relational.relation.Relation.version` tokens; a stale
        entry (e.g. after an in-place ``Relation.append``, which fires no
        mutation hook) is dropped and reported as a miss.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            if database is not None and not self._fresh(entry, database):
                del self._entries[key]
                self.stats.invalidations += 1
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            self.stats.operators_saved += entry.operator_count
            return entry

    @staticmethod
    def _fresh(entry: CachedPlan, database) -> bool:
        for name, version in entry.dependency_versions.items():
            try:
                if database.relation(name).version != version:
                    return False
            except KeyError:
                return False
        return True

    def put(self, key: str, node: PlanNode, relation: Relation, database=None) -> CachedPlan:
        """Store the result of ``node`` under ``key`` (evicting LRU if full).

        With a ``database``, the current version token of every scanned base
        relation is recorded so :meth:`get` can detect staleness.
        """
        dependencies = plan_dependencies(node)
        versions: dict[str, int] = {}
        if database is not None:
            for name in dependencies:
                try:
                    versions[name] = database.relation(name).version
                except KeyError:
                    pass
        entry = CachedPlan(
            key=key,
            relation=relation,
            operator_count=plan_cost(node),
            dependencies=dependencies,
            dependency_versions=versions,
        )
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = entry
            if self.maxsize is not None:
                while len(self._entries) > self.maxsize:
                    self._entries.popitem(last=False)
                    self.stats.evictions += 1
        return entry

    def __contains__(self, key: object) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------ #
    # invalidation
    # ------------------------------------------------------------------ #
    def invalidate(self, relation_name: str | None = None) -> int:
        """Drop entries depending on ``relation_name`` (all entries if None).

        Returns the number of entries dropped.
        """
        with self._lock:
            if relation_name is None:
                dropped = len(self._entries)
                self._entries.clear()
            else:
                stale = [
                    key
                    for key, entry in self._entries.items()
                    if relation_name in entry.dependencies
                ]
                for key in stale:
                    del self._entries[key]
                dropped = len(stale)
            self.stats.invalidations += dropped
            return dropped

    def clear(self) -> None:
        """Drop every entry and reset nothing else (stats are kept)."""
        with self._lock:
            self._entries.clear()

    # ------------------------------------------------------------------ #
    # database hooks
    # ------------------------------------------------------------------ #
    def attach(self, database) -> None:
        """Subscribe to ``database`` so mutations invalidate dependent entries.

        The hook is the database's :meth:`IndexCatalog.invalidate` listener
        chain, which both :meth:`Database.set_relation` (every data change
        routes through it) and direct
        ``database.index_catalog.invalidate(...)`` calls trigger.
        """
        database.index_catalog.add_invalidation_listener(self.invalidate)
        self._attached.append(database)

    def detach(self, database) -> None:
        """Undo :meth:`attach`."""
        database.index_catalog.remove_invalidation_listener(self.invalidate)
        if database in self._attached:
            self._attached.remove(database)

    def serves(self, database) -> bool:
        """True when this cache is attached to ``database``'s mutation hooks.

        Cache keys are database-agnostic canonical fingerprints, so sharing
        a cache with a database it is *not* attached to could serve another
        database's materializations (version tokens are independent counters
        that can coincide).  Callers injecting a long-lived cache gate on
        this.
        """
        return database in self._attached


# --------------------------------------------------------------------------- #
# materialization policies
# --------------------------------------------------------------------------- #
class MaterializationPolicy:
    """Decides which sub-plans the executor materialises through the cache.

    ``cache_key(node)`` returns the cache key to use for ``node`` or ``None``
    when the node should be executed directly (no lookup, no store).
    """

    def cache_key(self, node: PlanNode) -> str | None:
        raise NotImplementedError


class MaterializeAll(MaterializationPolicy):
    """Blind memoisation: every sub-plan is cached (legacy e-MQO executor)."""

    def cache_key(self, node: PlanNode) -> str | None:
        return node.canonical()


class MaterializeSelected(MaterializationPolicy):
    """Materialise only the sub-plans a global plan selected for sharing.

    This is the policy e-MQO and the batch engine use: the MQO planner
    identifies the shared subexpressions (benefit-ordered), and only those
    are looked up and stored — everything else executes directly without
    paying fingerprinting or cache-management costs for results that could
    never be reused.
    """

    def __init__(self, selected: frozenset[str] | set[str]):
        self.selected = frozenset(selected)

    def cache_key(self, node: PlanNode) -> str | None:
        key = node.canonical()
        return key if key in self.selected else None

    def __len__(self) -> int:
        return len(self.selected)


class MaterializeNone(MaterializationPolicy):
    """Never materialise (plain executor behaviour, useful as a baseline)."""

    def cache_key(self, node: PlanNode) -> str | None:
        return None
