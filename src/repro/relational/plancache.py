"""Plan-result cache and materialization policies for shared execution.

This is the machinery that turns the e-MQO *global plan* (and the batch
serving API) into actual shared work: a :class:`PlanCache` maps the canonical
fingerprint of a sub-plan to its already-computed result
:class:`~repro.relational.relation.Relation`, and a
:class:`MaterializationPolicy` decides *which* sub-plans the executor should
look up and store — the classical MQO materialisation choice of Roy et al. /
Zhou et al., rather than blind memoisation of every node.

The cache is bounded (LRU), keeps hit/miss/eviction statistics, and stays
correct under data changes: every entry records which base relations its plan
scans, and invalidation hooks tied to
:meth:`~repro.relational.database.Database.set_relation` and
:meth:`~repro.relational.indexes.IndexCatalog.invalidate` drop exactly the
entries that depend on a mutated relation.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.relational.algebra import Materialized, PlanNode, Scan
from repro.relational.relation import Relation


@dataclass
class PlanCacheStats:
    """Counters describing how effective a :class:`PlanCache` has been."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0
    #: operators that cache hits avoided executing
    operators_saved: int = 0
    #: entries delta-patched in place by a write instead of being dropped
    patches: int = 0

    @property
    def lookups(self) -> int:
        """Total number of cache probes."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of probes answered from the cache (0.0 when unused)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def snapshot(self) -> dict:
        """A plain-dict snapshot for reports and benchmark tables."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "operators_saved": self.operators_saved,
            "patches": self.patches,
            "hit_rate": round(self.hit_rate, 4),
        }


@dataclass
class CachedPlan:
    """One cache entry: a sub-plan's result plus its bookkeeping."""

    key: str
    relation: Relation
    #: number of operators executing the plan would cost (the saving per hit)
    operator_count: int
    #: names of the base relations the plan scans (invalidation dependencies)
    dependencies: frozenset[str] = field(default_factory=frozenset)
    #: data-version token of each dependency at store time (staleness check)
    dependency_versions: dict[str, int] = field(default_factory=dict)
    #: the plan itself, kept so append deltas can be replayed through it
    node: PlanNode | None = None


def plan_cost(node: PlanNode) -> int:
    """Operators the executor would count to evaluate ``node`` from scratch.

    Every non-:class:`Materialized` node is counted once — this matches
    :class:`~repro.relational.executor.Executor`, which records scans as
    operators too.
    """
    return sum(1 for child in node.walk() if not isinstance(child, Materialized))


def plan_dependencies(node: PlanNode) -> frozenset[str]:
    """Names of the base relations ``node`` reads (its invalidation keys)."""
    return frozenset(
        child.relation for child in node.walk() if isinstance(child, Scan)
    )


def append_shape(node: PlanNode) -> str | None:
    """``"plain"``/``"distinct"`` when ``node`` is monotone under appends.

    Monotone means a cached result can be *extended* by executing the plan
    over just the appended rows: exactly one :class:`Scan`, and above it only
    order-preserving unary operators (:class:`Select` and
    :class:`~repro.relational.algebra.Project`) — appended source rows can
    then only append output rows, in source order, exactly as a full
    recompute would place them.  ``"distinct"`` marks a set-semantic output
    (a distinct projection with only selections above it): delta outputs
    already present in the cached result must be filtered out.  A distinct
    below an ordinary projection is rejected (the projection may legitimately
    re-duplicate rows, so membership filtering would be wrong), as is
    everything binary or aggregating — ``Union`` included, because rows
    appended to its left input belong *mid*-output, not at the end.
    """
    from repro.relational.algebra import Project, Select

    shape = "plain"
    reprojected = False
    current = node
    while not isinstance(current, Scan):
        if isinstance(current, Select):
            current = current.child
        elif isinstance(current, Project):
            if current.distinct:
                if reprojected:
                    return None
                shape = "distinct" if shape == "plain" else shape
            else:
                reprojected = True
            current = current.child
        else:
            return None
    return shape


class PlanCache:
    """Bounded LRU cache of sub-plan results keyed by canonical fingerprint.

    ``maxsize=None`` disables the bound (used by the legacy memoizing
    executor); any other value evicts the least recently used entry once the
    cache is full.  Call :meth:`attach` to subscribe the cache to a
    database's mutation events so that stale entries can never be served.

    Lookups, stores and invalidations are guarded by a re-entrant lock so
    one cache can serve the batch evaluator's concurrently running queries
    (the LRU reordering and the stats counters are not otherwise atomic).
    """

    def __init__(self, maxsize: int | None = 1024):
        if maxsize is not None and maxsize <= 0:
            raise ValueError("maxsize must be positive (or None for unbounded)")
        self.maxsize = maxsize
        self.stats = PlanCacheStats()
        self._entries: "OrderedDict[str, CachedPlan]" = OrderedDict()
        self._attached: list = []
        self._write_hooks: dict[int, object] = {}
        self._lock = threading.RLock()

    # ------------------------------------------------------------------ #
    # lookup / store
    # ------------------------------------------------------------------ #
    def get(self, key: str, database=None) -> CachedPlan | None:
        """The cached entry for ``key`` (recording a hit or miss).

        With a ``database``, the entry's recorded dependency versions are
        checked against the stored relations' current
        :attr:`~repro.relational.relation.Relation.version` tokens; a stale
        entry (e.g. after an in-place ``Relation.append``, which fires no
        mutation hook) is dropped and reported as a miss.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            if database is not None and not self._fresh(entry, database):
                del self._entries[key]
                self.stats.invalidations += 1
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            self.stats.operators_saved += entry.operator_count
            return entry

    @staticmethod
    def _fresh(entry: CachedPlan, database) -> bool:
        for name, version in entry.dependency_versions.items():
            try:
                if database.relation(name).version != version:
                    return False
            except KeyError:
                return False
        return True

    def put(
        self,
        key: str,
        node: PlanNode,
        relation: Relation,
        database=None,
        versions: dict[str, int] | None = None,
    ) -> CachedPlan:
        """Store the result of ``node`` under ``key`` (evicting LRU if full).

        With a ``database``, the version token of every scanned base relation
        is recorded so :meth:`get` can detect staleness.  ``versions`` lets
        the executor supply tokens captured *before* it read the data: if a
        concurrent write swapped the data mid-execution, the entry is
        recorded under the pre-write token and the next version-checked
        lookup discards it — recording the post-write token would instead
        serve pre-write rows as current forever.  Missing names fall back to
        the live token.
        """
        dependencies = plan_dependencies(node)
        recorded: dict[str, int] = {}
        if database is not None:
            for name in dependencies:
                if versions is not None and name in versions:
                    recorded[name] = versions[name]
                    continue
                try:
                    recorded[name] = database.relation(name).version
                except KeyError:
                    pass
        entry = CachedPlan(
            key=key,
            relation=relation,
            operator_count=plan_cost(node),
            dependencies=dependencies,
            dependency_versions=recorded,
            node=node,
        )
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = entry
            if self.maxsize is not None:
                while len(self._entries) > self.maxsize:
                    self._entries.popitem(last=False)
                    self.stats.evictions += 1
        return entry

    def stats_snapshot(self) -> dict:
        """A lock-guarded, point-in-time copy of the cache statistics.

        :attr:`stats` is mutated under the cache lock (``get``/``put``/
        ``apply_write``); reading its fields live from another thread can
        observe a torn update (hits incremented, operators_saved not yet).
        Sessions and reports read this snapshot instead.  ``entries`` is the
        current cache population (not part of :class:`PlanCacheStats`).
        """
        with self._lock:
            snapshot = self.stats.snapshot()
            snapshot["entries"] = len(self._entries)
            return snapshot

    def __contains__(self, key: object) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------ #
    # invalidation
    # ------------------------------------------------------------------ #
    def invalidate(self, relation_name: str | None = None) -> int:
        """Drop entries depending on ``relation_name`` (all entries if None).

        Returns the number of entries dropped.
        """
        with self._lock:
            if relation_name is None:
                dropped = len(self._entries)
                self._entries.clear()
            else:
                stale = [
                    key
                    for key, entry in self._entries.items()
                    if relation_name in entry.dependencies
                ]
                for key in stale:
                    del self._entries[key]
                dropped = len(stale)
            self.stats.invalidations += dropped
            return dropped

    def clear(self) -> None:
        """Drop every entry and reset nothing else (stats are kept)."""
        with self._lock:
            self._entries.clear()

    # ------------------------------------------------------------------ #
    # delta maintenance
    # ------------------------------------------------------------------ #
    def apply_write(self, database, relation_name: str, delta) -> tuple[int, int]:
        """Maintain the entries that read ``relation_name`` through one write.

        Entries that never read the written relation are untouched.  For an
        append delta, entries whose plan is append-monotone (see
        :func:`append_shape`) and whose recorded version matches the delta's
        base are *patched*: the cached plan is replayed over a shadow
        database holding only the appended rows, and the delta output is
        folded onto the cached result — byte-identical to a full recompute
        because the monotone operators preserve input row order.  Everything
        else (updates, deletes, wholesale replacements, non-monotone plans,
        version gaps) drops the entry.  Returns ``(patched, dropped)``.
        """
        with self._lock:
            patched = dropped = 0
            for key in list(self._entries):
                entry = self._entries[key]
                if relation_name not in entry.dependencies:
                    continue
                replacement = None
                if delta is not None and delta.is_append:
                    replacement = self._patched_entry(
                        database, entry, relation_name, delta
                    )
                if replacement is None:
                    del self._entries[key]
                    dropped += 1
                else:
                    self._entries[key] = replacement
                    patched += 1
            self.stats.patches += patched
            self.stats.invalidations += dropped
            return patched, dropped

    @staticmethod
    def _patched_entry(database, entry: CachedPlan, relation_name: str, delta):
        """``entry`` with an append delta folded in, or ``None`` to drop it."""
        node = entry.node
        if node is None:
            return None
        if entry.dependency_versions.get(relation_name) != delta.base_version:
            return None
        shape = append_shape(node)
        if shape is None:
            return None
        # Replay the cached plan over just the appended rows, through the
        # real operator implementations (a throwaway database + executor),
        # so the patch can never drift from execution semantics.
        from repro.relational.database import Database
        from repro.relational.executor import Executor

        schema = database.schema.relation(relation_name)
        shadow = Database(
            database.schema, {relation_name: Relation.from_schema(schema, delta.rows)}
        )
        extra = Executor(shadow).execute(node)
        cached = entry.relation
        if shape == "distinct":
            seen = set(cached.rows)
            rows = cached.rows + [row for row in extra.rows if row not in seen]
            patched = Relation(cached.columns, rows, name=cached.name)
        elif cached.columns and cached.columns == extra.columns:
            # Columnar-native concat: the patched entry keeps a column-major
            # backing, so serving it back into the columnar engine stays a
            # free round trip.
            from repro.relational.columnar import ColumnBatch

            patched = (
                ColumnBatch.from_relation(cached)
                .concat(ColumnBatch.from_relation(extra))
                .to_relation()
            )
        else:
            patched = Relation(
                cached.columns, cached.rows + extra.rows, name=cached.name
            )
        versions = dict(entry.dependency_versions)
        versions[relation_name] = delta.version
        return CachedPlan(
            key=entry.key,
            relation=patched,
            operator_count=entry.operator_count,
            dependencies=entry.dependencies,
            dependency_versions=versions,
            node=node,
        )

    # ------------------------------------------------------------------ #
    # database hooks
    # ------------------------------------------------------------------ #
    def attach(self, database) -> None:
        """Subscribe to ``database`` so mutations maintain dependent entries.

        Two hooks: the database's :meth:`IndexCatalog.invalidate` listener
        chain (fired by the wholesale :meth:`Database.set_relation` and by
        direct ``database.index_catalog.invalidate(...)`` calls) drops the
        written relation's dependents, and the delta-aware write-listener
        chain (fired by ``append_rows``/``update_rows``/``delete_rows``)
        routes into :meth:`apply_write` so append deltas patch instead of
        drop.
        """
        database.index_catalog.add_invalidation_listener(self.invalidate)
        if hasattr(database, "add_write_listener"):

            def hook(name, delta, _database=database):
                self.apply_write(_database, name, delta)

            self._write_hooks[id(database)] = hook
            database.add_write_listener(hook)
        self._attached.append(database)

    def detach(self, database) -> None:
        """Undo :meth:`attach`."""
        database.index_catalog.remove_invalidation_listener(self.invalidate)
        hook = self._write_hooks.pop(id(database), None)
        if hook is not None:
            database.remove_write_listener(hook)
        if database in self._attached:
            self._attached.remove(database)

    def serves(self, database) -> bool:
        """True when this cache is attached to ``database``'s mutation hooks.

        Cache keys are database-agnostic canonical fingerprints, so sharing
        a cache with a database it is *not* attached to could serve another
        database's materializations (version tokens are independent counters
        that can coincide).  Callers injecting a long-lived cache gate on
        this.
        """
        return database in self._attached


# --------------------------------------------------------------------------- #
# materialization policies
# --------------------------------------------------------------------------- #
class MaterializationPolicy:
    """Decides which sub-plans the executor materialises through the cache.

    ``cache_key(node)`` returns the cache key to use for ``node`` or ``None``
    when the node should be executed directly (no lookup, no store).
    """

    def cache_key(self, node: PlanNode) -> str | None:
        raise NotImplementedError


class MaterializeAll(MaterializationPolicy):
    """Blind memoisation: every sub-plan is cached (legacy e-MQO executor)."""

    def cache_key(self, node: PlanNode) -> str | None:
        return node.canonical()


class MaterializeSelected(MaterializationPolicy):
    """Materialise only the sub-plans a global plan selected for sharing.

    This is the policy e-MQO and the batch engine use: the MQO planner
    identifies the shared subexpressions (benefit-ordered), and only those
    are looked up and stored — everything else executes directly without
    paying fingerprinting or cache-management costs for results that could
    never be reused.
    """

    def __init__(self, selected: frozenset[str] | set[str]):
        self.selected = frozenset(selected)

    def cache_key(self, node: PlanNode) -> str | None:
        key = node.canonical()
        return key if key in self.selected else None

    def __len__(self) -> int:
        return len(self.selected)


class MaterializeNone(MaterializationPolicy):
    """Never materialise (plain executor behaviour, useful as a baseline)."""

    def cache_key(self, node: PlanNode) -> str | None:
        return None
