"""The :class:`Database` — a catalog of named relations (the source instance ``D``)."""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.relational.indexes import HashIndex, IndexCatalog
from repro.relational.relation import Relation
from repro.relational.schema import DatabaseSchema, RelationSchema


class Database:
    """A named collection of :class:`Relation` instances plus their schema.

    This plays the role of the paper's source instance ``D``: source queries
    (reformulated target queries) are executed against it by
    :class:`~repro.relational.executor.Executor`.
    """

    def __init__(self, schema: DatabaseSchema, relations: dict[str, Relation] | None = None):
        self.schema = schema
        self._relations: dict[str, Relation] = {}
        self._indexes = IndexCatalog()
        self._stats_catalog = None
        if relations:
            for name, relation in relations.items():
                self.set_relation(name, relation)

    # ------------------------------------------------------------------ #
    @classmethod
    def empty(cls, schema: DatabaseSchema) -> "Database":
        """A database with an empty relation for every schema relation."""
        database = cls(schema)
        for relation_schema in schema:
            database.set_relation(
                relation_schema.name, Relation.from_schema(relation_schema, [])
            )
        return database

    # ------------------------------------------------------------------ #
    def set_relation(self, name: str, relation: Relation) -> None:
        """Install (or replace) the contents of relation ``name``."""
        if not self.schema.has_relation(name):
            raise KeyError(f"schema {self.schema.name!r} has no relation {name!r}")
        expected = self.schema.relation(name)
        if len(relation.columns) != len(expected):
            raise ValueError(
                f"relation {name!r} expects {len(expected)} columns, got {len(relation.columns)}"
            )
        self._relations[name] = relation
        # Invalidates stale indexes and, through the catalog's listener
        # chain, any attached caches (e.g. a PlanCache) that depend on the
        # mutated relation.
        self._indexes.invalidate(name)

    @property
    def index_catalog(self) -> IndexCatalog:
        """The database's lazy hash-index cache."""
        return self._indexes

    @property
    def stats_catalog(self):
        """The database's lazy, version-keyed statistics catalog.

        Created on first access (the import is deferred to keep the
        relational substrate free of an optimizer dependency); entries are
        keyed on relation data versions, so no explicit invalidation hook is
        needed — stale statistics are re-collected transparently.
        """
        if self._stats_catalog is None:
            from repro.relational.optimizer.statistics import StatsCatalog

            self._stats_catalog = StatsCatalog(self)
        return self._stats_catalog

    def relation(self, name: str) -> Relation:
        """The stored relation called ``name``."""
        try:
            return self._relations[name]
        except KeyError:
            raise KeyError(f"database has no relation {name!r}") from None

    def relation_schema(self, name: str) -> RelationSchema:
        """Schema of relation ``name``."""
        return self.schema.relation(name)

    def has_relation(self, name: str) -> bool:
        """True when relation ``name`` is loaded."""
        return name in self._relations

    def scan(self, name: str, alias: str | None = None) -> Relation:
        """Return relation ``name`` with columns requalified under ``alias``."""
        relation = self.relation(name)
        if alias is None or alias == relation.name:
            return relation
        return relation.prefixed(alias)

    def index(self, relation_name: str, column: str) -> HashIndex:
        """Return (building if needed) a hash index on ``relation_name.column``.

        ``column`` is the *unqualified* attribute name; the index is built on
        the stored relation whose labels are ``relation_name.column``.
        """
        relation = self.relation(relation_name)
        label = f"{relation_name}.{column}" if not relation.has_column(column) else column
        return self._indexes.get(relation, relation_name, label)

    # ------------------------------------------------------------------ #
    @property
    def relation_names(self) -> list[str]:
        """Names of loaded relations."""
        return list(self._relations)

    @property
    def total_rows(self) -> int:
        """Total number of rows across all loaded relations."""
        return sum(len(relation) for relation in self._relations.values())

    def cardinalities(self) -> dict[str, int]:
        """Row count per loaded relation."""
        return {name: len(relation) for name, relation in self._relations.items()}

    def __iter__(self) -> Iterator[tuple[str, Relation]]:
        return iter(self._relations.items())

    def __len__(self) -> int:
        return len(self._relations)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Database(schema={self.schema.name!r}, relations={len(self._relations)}, "
            f"rows={self.total_rows})"
        )
