"""The :class:`Database` — a catalog of named relations (the source instance ``D``)."""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.relational.indexes import HashIndex, IndexCatalog
from repro.relational.relation import Delta, Relation
from repro.relational.schema import DatabaseSchema, RelationSchema

#: Signature of a write listener: ``listener(relation_name, delta)``.
#: ``delta`` is ``None`` for a wholesale replacement (``set_relation``).
WriteListener = Callable[[str, "Delta | None"], None]


class Database:
    """A named collection of :class:`Relation` instances plus their schema.

    This plays the role of the paper's source instance ``D``: source queries
    (reformulated target queries) are executed against it by
    :class:`~repro.relational.executor.Executor`.
    """

    def __init__(self, schema: DatabaseSchema, relations: dict[str, Relation] | None = None):
        self.schema = schema
        self._relations: dict[str, Relation] = {}
        self._indexes = IndexCatalog()
        self._stats_catalog = None
        self._write_listeners: list[WriteListener] = []
        if relations:
            for name, relation in relations.items():
                self.set_relation(name, relation)

    # ------------------------------------------------------------------ #
    @classmethod
    def empty(cls, schema: DatabaseSchema) -> "Database":
        """A database with an empty relation for every schema relation."""
        database = cls(schema)
        for relation_schema in schema:
            database.set_relation(
                relation_schema.name, Relation.from_schema(relation_schema, [])
            )
        return database

    # ------------------------------------------------------------------ #
    def set_relation(self, name: str, relation: Relation) -> None:
        """Install (or replace) the contents of relation ``name``."""
        if not self.schema.has_relation(name):
            raise KeyError(f"schema {self.schema.name!r} has no relation {name!r}")
        expected = self.schema.relation(name)
        if len(relation.columns) != len(expected):
            raise ValueError(
                f"relation {name!r} expects {len(expected)} columns, got {len(relation.columns)}"
            )
        self._relations[name] = relation
        # Invalidates stale indexes and, through the catalog's listener
        # chain, any attached caches (e.g. a PlanCache) that depend on the
        # mutated relation.  The scope is ``name`` only: caches for
        # relations that were not written keep their state, and the
        # replaced relation's own version-keyed caches (column-major,
        # shards, statistics) become unreachable with the old object.
        self._indexes.invalidate(name)

    # ------------------------------------------------------------------ #
    # the delta-aware write API
    # ------------------------------------------------------------------ #
    def append_rows(self, name: str, rows: Iterable[Sequence[Any]]) -> Delta | None:
        """Append ``rows`` to relation ``name``, publishing the delta.

        Unlike :meth:`set_relation` (the wholesale path), the write is
        described precisely: cached hash indexes are patched in place, and
        registered write listeners (plan caches, sessions) receive the
        :class:`~repro.relational.relation.Delta` so they can patch — rather
        than drop — entries that depend on ``name``.  Returns ``None`` for an
        empty input (nothing written, nothing published).
        """
        relation = self.relation(name)
        delta = relation.append_rows(rows)
        return self._finish_write(name, relation, delta)

    def update_rows(
        self, name: str, positions: Sequence[int], rows: Iterable[Sequence[Any]]
    ) -> Delta | None:
        """Replace the rows of ``name`` at ``positions`` with ``rows``."""
        relation = self.relation(name)
        delta = relation.update_rows(positions, rows)
        return self._finish_write(name, relation, delta)

    def delete_rows(self, name: str, positions: Sequence[int]) -> Delta | None:
        """Delete the rows of ``name`` at ``positions``."""
        relation = self.relation(name)
        delta = relation.delete_rows(positions)
        return self._finish_write(name, relation, delta)

    def _finish_write(
        self, name: str, relation: Relation, delta: Delta | None
    ) -> Delta | None:
        if delta is None:
            return None
        self._indexes.apply_delta(name, relation, delta)
        for listener in list(self._write_listeners):
            listener(name, delta)
        return delta

    def add_write_listener(self, listener: WriteListener) -> None:
        """Call ``listener(name, delta)`` after every delta-producing write."""
        self._write_listeners.append(listener)

    def remove_write_listener(self, listener: WriteListener) -> None:
        """Detach a previously registered write listener."""
        if listener in self._write_listeners:
            self._write_listeners.remove(listener)

    @property
    def index_catalog(self) -> IndexCatalog:
        """The database's lazy hash-index cache."""
        return self._indexes

    @property
    def stats_catalog(self):
        """The database's lazy, version-keyed statistics catalog.

        Created on first access (the import is deferred to keep the
        relational substrate free of an optimizer dependency); entries are
        keyed on relation data versions, so no explicit invalidation hook is
        needed — stale statistics are re-collected transparently.
        """
        if self._stats_catalog is None:
            from repro.relational.optimizer.statistics import StatsCatalog

            self._stats_catalog = StatsCatalog(self)
        return self._stats_catalog

    def relation(self, name: str) -> Relation:
        """The stored relation called ``name``."""
        try:
            return self._relations[name]
        except KeyError:
            raise KeyError(f"database has no relation {name!r}") from None

    def relation_schema(self, name: str) -> RelationSchema:
        """Schema of relation ``name``."""
        return self.schema.relation(name)

    def has_relation(self, name: str) -> bool:
        """True when relation ``name`` is loaded."""
        return name in self._relations

    def scan(self, name: str, alias: str | None = None) -> Relation:
        """Return relation ``name`` with columns requalified under ``alias``."""
        relation = self.relation(name)
        if alias is None or alias == relation.name:
            return relation
        return relation.prefixed(alias)

    def index(self, relation_name: str, column: str) -> HashIndex:
        """Return (building if needed) a hash index on ``relation_name.column``.

        ``column`` is the *unqualified* attribute name; the index is built on
        the stored relation whose labels are ``relation_name.column``.
        """
        relation = self.relation(relation_name)
        label = f"{relation_name}.{column}" if not relation.has_column(column) else column
        return self._indexes.get(relation, relation_name, label)

    # ------------------------------------------------------------------ #
    @property
    def relation_names(self) -> list[str]:
        """Names of loaded relations."""
        return list(self._relations)

    @property
    def total_rows(self) -> int:
        """Total number of rows across all loaded relations."""
        return sum(len(relation) for relation in self._relations.values())

    def cardinalities(self) -> dict[str, int]:
        """Row count per loaded relation."""
        return {name: len(relation) for name, relation in self._relations.items()}

    def __iter__(self) -> Iterator[tuple[str, Relation]]:
        return iter(self._relations.items())

    def __len__(self) -> int:
        return len(self._relations)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Database(schema={self.schema.name!r}, relations={len(self._relations)}, "
            f"rows={self.total_rows})"
        )
