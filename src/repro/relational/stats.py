"""Execution statistics collected by the engine and the evaluators.

The paper's evaluation reports two kinds of cost: wall-clock time split into
phases (query rewriting, query evaluation, answer aggregation) and the number
of *source operators* executed (Table IV).  :class:`ExecutionStats` collects
both, plus row counters that are useful when debugging the evaluators.
"""

from __future__ import annotations

import time
from collections import Counter
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from repro.obs.trace import current_tracer


@dataclass
class ExecutionStats:
    """Mutable accumulator of execution counters.

    All evaluators accept (or create) one of these; the benchmark harness
    reads it back to populate the per-figure tables.
    """

    #: number of executed operators, keyed by operator class name
    operators: Counter = field(default_factory=Counter)
    #: number of complete source queries executed (basic/e-basic/e-MQO/q-sharing)
    source_queries: int = 0
    #: number of source-level operators executed (o-sharing counts these directly)
    source_operators: int = 0
    #: number of source queries *rewritten* (translation effort)
    reformulations: int = 0
    #: number of mapping partitions produced by partition()/next()
    partitions_created: int = 0
    #: rows read from base relations
    rows_scanned: int = 0
    #: rows produced by the root operators of executed plans
    rows_output: int = 0
    #: plan-cache hits: shared subexpressions answered without execution
    plan_cache_hits: int = 0
    #: plan-cache misses: subexpressions the cache had to execute and store
    plan_cache_misses: int = 0
    #: operators *not* executed thanks to plan-cache hits (the MQO saving)
    operators_saved: int = 0
    #: plans run through the cost-based optimizer (memo hits included)
    plans_optimized: int = 0
    #: optimizer-memo hits (identical plans optimized once per fingerprint)
    optimizer_memo_hits: int = 0
    #: optimizer rewrite rules fired, keyed by rule name
    optimizer_rules: Counter = field(default_factory=Counter)
    #: join orders examined by the cost-based join-ordering search
    join_orders_considered: int = 0
    #: estimated root-result rows across all optimized plans
    estimated_rows: float = 0.0
    #: plan-cache entries delta-patched in place by writes (kept warm)
    entries_patched: int = 0
    #: plan-cache entries dropped by write/replace invalidation
    entries_invalidated: int = 0
    #: statistics-catalog entries refreshed from an append delta instead of
    #: a full profiling pass
    stats_refreshed_incrementally: int = 0
    #: e-units created in the u-trace (o-sharing/top-k/anytime)
    eunits_created: int = 0
    #: e-units discarded through the empty-intermediate shortcut
    eunits_pruned: int = 0
    #: mappings carried by created e-units (the anytime progress signal)
    mappings_evaluated: int = 0
    #: per-phase wall-clock seconds
    phase_seconds: dict = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    def count_operator(self, name: str, rows_in: int = 0, rows_out: int = 0) -> None:
        """Record the execution of one operator."""
        self.operators[name] += 1
        self.source_operators += 1
        self.rows_scanned += rows_in
        self.rows_output += rows_out
        tracer = current_tracer()
        if tracer is not None:
            # Counted exactly as the stats see it, attached to whichever
            # span is innermost (the executor's operator span) — so the
            # trace can never disagree with the gated operator counters.
            tracer.event("operator", op=name, rows_in=rows_in, rows_out=rows_out)

    def count_source_query(self) -> None:
        """Record the execution of one complete source query."""
        self.source_queries += 1

    def count_reformulation(self, amount: int = 1) -> None:
        """Record query/operator rewriting work."""
        self.reformulations += amount

    def count_partitions(self, amount: int) -> None:
        """Record mapping partitions produced."""
        self.partitions_created += amount

    def count_cache_hit(self, operators_saved: int = 0) -> None:
        """Record a plan-cache hit and the operators it avoided executing."""
        self.plan_cache_hits += 1
        self.operators_saved += operators_saved

    def count_cache_miss(self) -> None:
        """Record a plan-cache miss (the subexpression had to be executed)."""
        self.plan_cache_misses += 1

    def count_optimization(
        self,
        rules: Counter | dict | None = None,
        join_orders: int = 0,
        estimated_rows: float = 0.0,
        memo_hit: bool = False,
    ) -> None:
        """Record one pass of a plan through the cost-based optimizer."""
        self.plans_optimized += 1
        if memo_hit:
            self.optimizer_memo_hits += 1
        if rules:
            self.optimizer_rules.update(rules)
        self.join_orders_considered += join_orders
        self.estimated_rows += estimated_rows

    def count_eunits(self, created: int = 0, pruned: int = 0, mappings: int = 0) -> None:
        """Record u-trace progress (e-units created/pruned, mappings carried)."""
        self.eunits_created += created
        self.eunits_pruned += pruned
        self.mappings_evaluated += mappings

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Context manager accumulating wall-clock time into ``phase_seconds[name]``.

        With an ambient tracer active (a session serving a traced call) the
        phase additionally opens a ``phase:<name>`` span, so the per-stage
        split the paper reports shows up in the span tree without touching
        the six evaluators.  The untraced cost is one thread-local read.
        """
        tracer = current_tracer()
        if tracer is None:
            started = time.perf_counter()
            try:
                yield
            finally:
                elapsed = time.perf_counter() - started
                self.phase_seconds[name] = self.phase_seconds.get(name, 0.0) + elapsed
            return
        with tracer.span(f"phase:{name}") as span:
            started = time.perf_counter()
            try:
                yield
            finally:
                elapsed = time.perf_counter() - started
                self.phase_seconds[name] = self.phase_seconds.get(name, 0.0) + elapsed
                span.attributes["seconds"] = round(elapsed, 6)

    # ------------------------------------------------------------------ #
    @property
    def total_operators(self) -> int:
        """Total number of operators executed."""
        return sum(self.operators.values())

    @property
    def total_seconds(self) -> float:
        """Total wall-clock time across all recorded phases."""
        return sum(self.phase_seconds.values())

    def merge(self, other: "ExecutionStats") -> None:
        """Fold another stats object into this one."""
        self.operators.update(other.operators)
        self.source_queries += other.source_queries
        self.source_operators += other.source_operators
        self.reformulations += other.reformulations
        self.partitions_created += other.partitions_created
        self.rows_scanned += other.rows_scanned
        self.rows_output += other.rows_output
        self.plan_cache_hits += other.plan_cache_hits
        self.plan_cache_misses += other.plan_cache_misses
        self.operators_saved += other.operators_saved
        self.plans_optimized += other.plans_optimized
        self.optimizer_memo_hits += other.optimizer_memo_hits
        self.optimizer_rules.update(other.optimizer_rules)
        self.join_orders_considered += other.join_orders_considered
        self.estimated_rows += other.estimated_rows
        self.entries_patched += other.entries_patched
        self.entries_invalidated += other.entries_invalidated
        self.stats_refreshed_incrementally += other.stats_refreshed_incrementally
        self.eunits_created += other.eunits_created
        self.eunits_pruned += other.eunits_pruned
        self.mappings_evaluated += other.mappings_evaluated
        for name, seconds in other.phase_seconds.items():
            self.phase_seconds[name] = self.phase_seconds.get(name, 0.0) + seconds

    def snapshot(self) -> dict:
        """A plain-dict snapshot used by the benchmark reporting layer."""
        return {
            "operators": dict(self.operators),
            "source_queries": self.source_queries,
            "source_operators": self.source_operators,
            "reformulations": self.reformulations,
            "partitions_created": self.partitions_created,
            "rows_scanned": self.rows_scanned,
            "rows_output": self.rows_output,
            "plan_cache_hits": self.plan_cache_hits,
            "plan_cache_misses": self.plan_cache_misses,
            "operators_saved": self.operators_saved,
            "plans_optimized": self.plans_optimized,
            "optimizer_memo_hits": self.optimizer_memo_hits,
            "optimizer_rules": dict(self.optimizer_rules),
            "join_orders_considered": self.join_orders_considered,
            "estimated_rows": self.estimated_rows,
            "entries_patched": self.entries_patched,
            "entries_invalidated": self.entries_invalidated,
            "stats_refreshed_incrementally": self.stats_refreshed_incrementally,
            "eunits_created": self.eunits_created,
            "eunits_pruned": self.eunits_pruned,
            "mappings_evaluated": self.mappings_evaluated,
            "phase_seconds": dict(self.phase_seconds),
        }

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        phases = ", ".join(f"{name}={seconds:.3f}s" for name, seconds in self.phase_seconds.items())
        return (
            f"ExecutionStats(source_queries={self.source_queries}, "
            f"source_operators={self.source_operators}, "
            f"reformulations={self.reformulations}, phases=[{phases}])"
        )
