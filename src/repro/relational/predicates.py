"""Predicate AST evaluated against relation rows.

Predicates are built from comparisons over :mod:`repro.relational.expressions`
expressions and the boolean connectives AND / OR / NOT.  They support the
operations the reproduction needs:

* evaluation against a row (used by the executor);
* enumeration of referenced columns (used by reformulation and by operator
  validity checks in o-sharing);
* structural rewriting of column references (used when a target predicate is
  reformulated into a source predicate through a mapping);
* a canonical string form (used to detect identical source queries /
  operators in e-basic, e-MQO and the sharing evaluators).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

from repro.relational.expressions import ColumnRef, Expression, Literal, col, lit
from repro.relational.relation import Relation, Row
from repro.relational.types import comparable


class Predicate:
    """Base class of the predicate AST."""

    def evaluate(self, relation: Relation, row: Row) -> bool:
        """True when ``row`` of ``relation`` satisfies the predicate."""
        raise NotImplementedError

    def referenced_columns(self) -> list[ColumnRef]:
        """All column references appearing in the predicate."""
        raise NotImplementedError

    def rename(self, rename_ref: Callable[[ColumnRef], ColumnRef]) -> "Predicate":
        """Return a copy with every column reference rewritten."""
        raise NotImplementedError

    def canonical(self) -> str:
        """A canonical textual form used for plan fingerprinting."""
        raise NotImplementedError

    def conjuncts(self) -> list["Predicate"]:
        """Flatten a conjunction into its conjuncts (a non-AND predicate is itself)."""
        return [self]

    def __and__(self, other: "Predicate") -> "Predicate":
        return And(self, other)

    def __or__(self, other: "Predicate") -> "Predicate":
        return Or(self, other)

    def __invert__(self) -> "Predicate":
        return Not(self)


@dataclass(frozen=True)
class TruePredicate(Predicate):
    """A predicate satisfied by every row."""

    def evaluate(self, relation: Relation, row: Row) -> bool:
        return True

    def referenced_columns(self) -> list[ColumnRef]:
        return []

    def rename(self, rename_ref: Callable[[ColumnRef], ColumnRef]) -> "Predicate":
        return self

    def canonical(self) -> str:
        return "TRUE"


@dataclass(frozen=True)
class FalsePredicate(Predicate):
    """A predicate satisfied by no row.

    Produced by the optimizer's constant folding (e.g. contradictory equality
    conjuncts); a selection carrying it is short-circuited into an empty
    relation before execution.
    """

    def evaluate(self, relation: Relation, row: Row) -> bool:
        return False

    def referenced_columns(self) -> list[ColumnRef]:
        return []

    def rename(self, rename_ref: Callable[[ColumnRef], ColumnRef]) -> "Predicate":
        return self

    def canonical(self) -> str:
        return "FALSE"


_COMPARATORS: dict[str, Callable[[Any, Any], bool]] = {
    "=": lambda left, right: left == right,
    "!=": lambda left, right: left != right,
    "<": lambda left, right: left < right,
    "<=": lambda left, right: left <= right,
    ">": lambda left, right: left > right,
    ">=": lambda left, right: left >= right,
}


@dataclass(frozen=True)
class Comparison(Predicate):
    """Binary comparison between two expressions."""

    left: Expression
    op: str
    right: Expression

    def __post_init__(self) -> None:
        if self.op not in _COMPARATORS:
            raise ValueError(f"unsupported comparison operator {self.op!r}")

    def evaluate(self, relation: Relation, row: Row) -> bool:
        left = self.left.evaluate(relation, row)
        right = self.right.evaluate(relation, row)
        if left is None or right is None:
            return False
        left, right = comparable(left, right)
        try:
            return _COMPARATORS[self.op](left, right)
        except TypeError:
            return False

    def referenced_columns(self) -> list[ColumnRef]:
        return self.left.referenced_columns() + self.right.referenced_columns()

    def rename(self, rename_ref: Callable[[ColumnRef], ColumnRef]) -> "Predicate":
        return Comparison(self.left.rename(rename_ref), self.op, self.right.rename(rename_ref))

    def canonical(self) -> str:
        return f"({self.left} {self.op} {self.right})"

    @property
    def is_column_constant(self) -> bool:
        """True for the common ``column <op> literal`` shape."""
        return isinstance(self.left, ColumnRef) and isinstance(self.right, Literal)

    @property
    def is_equi_column(self) -> bool:
        """True for ``column = column`` (join-style) comparisons."""
        return (
            self.op == "="
            and isinstance(self.left, ColumnRef)
            and isinstance(self.right, ColumnRef)
        )


@dataclass(frozen=True)
class In(Predicate):
    """Membership test: ``column IN (v1, v2, ...)``."""

    expr: Expression
    values: tuple

    def evaluate(self, relation: Relation, row: Row) -> bool:
        value = self.expr.evaluate(relation, row)
        return value in self.values

    def referenced_columns(self) -> list[ColumnRef]:
        return self.expr.referenced_columns()

    def rename(self, rename_ref: Callable[[ColumnRef], ColumnRef]) -> "Predicate":
        return In(self.expr.rename(rename_ref), self.values)

    def canonical(self) -> str:
        return f"({self.expr} IN {sorted(map(repr, self.values))})"


@dataclass(frozen=True)
class Between(Predicate):
    """Range test: ``low <= expr <= high``."""

    expr: Expression
    low: Any
    high: Any

    def evaluate(self, relation: Relation, row: Row) -> bool:
        value = self.expr.evaluate(relation, row)
        if value is None:
            return False
        low, value_low = comparable(self.low, value)
        high, value_high = comparable(self.high, value)
        try:
            return low <= value_low and value_high <= high
        except TypeError:
            return False

    def referenced_columns(self) -> list[ColumnRef]:
        return self.expr.referenced_columns()

    def rename(self, rename_ref: Callable[[ColumnRef], ColumnRef]) -> "Predicate":
        return Between(self.expr.rename(rename_ref), self.low, self.high)

    def canonical(self) -> str:
        return f"({self.expr} BETWEEN {self.low!r} AND {self.high!r})"


class _Connective(Predicate):
    """Common plumbing for AND/OR."""

    symbol = ""
    short_circuit = True

    def __init__(self, *operands: Predicate):
        if len(operands) < 2:
            raise ValueError(f"{type(self).__name__} needs at least two operands")
        self.operands: tuple[Predicate, ...] = tuple(operands)

    def referenced_columns(self) -> list[ColumnRef]:
        refs: list[ColumnRef] = []
        for operand in self.operands:
            refs.extend(operand.referenced_columns())
        return refs

    def canonical(self) -> str:
        inner = f" {self.symbol} ".join(sorted(op.canonical() for op in self.operands))
        return f"({inner})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, type(self)):
            return NotImplemented
        return self.operands == other.operands

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.operands))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}{self.operands!r}"


class And(_Connective):
    """Conjunction of predicates."""

    symbol = "AND"

    def evaluate(self, relation: Relation, row: Row) -> bool:
        return all(operand.evaluate(relation, row) for operand in self.operands)

    def rename(self, rename_ref: Callable[[ColumnRef], ColumnRef]) -> "Predicate":
        return And(*[operand.rename(rename_ref) for operand in self.operands])

    def conjuncts(self) -> list[Predicate]:
        flattened: list[Predicate] = []
        for operand in self.operands:
            flattened.extend(operand.conjuncts())
        return flattened


class Or(_Connective):
    """Disjunction of predicates."""

    symbol = "OR"

    def evaluate(self, relation: Relation, row: Row) -> bool:
        return any(operand.evaluate(relation, row) for operand in self.operands)

    def rename(self, rename_ref: Callable[[ColumnRef], ColumnRef]) -> "Predicate":
        return Or(*[operand.rename(rename_ref) for operand in self.operands])


@dataclass(frozen=True)
class Not(Predicate):
    """Negation of a predicate."""

    operand: Predicate

    def evaluate(self, relation: Relation, row: Row) -> bool:
        return not self.operand.evaluate(relation, row)

    def referenced_columns(self) -> list[ColumnRef]:
        return self.operand.referenced_columns()

    def rename(self, rename_ref: Callable[[ColumnRef], ColumnRef]) -> "Predicate":
        return Not(self.operand.rename(rename_ref))

    def canonical(self) -> str:
        return f"(NOT {self.operand.canonical()})"


# --------------------------------------------------------------------------- #
# convenience constructors
# --------------------------------------------------------------------------- #
def _as_expression(value: Any) -> Expression:
    if isinstance(value, Expression):
        return value
    if isinstance(value, str) and "." in value:
        # Strings containing a dot are *not* treated as column references —
        # constants such as addresses legitimately contain dots.  Callers that
        # want a column reference should use :func:`repro.relational.expressions.col`.
        return lit(value)
    return lit(value)


def Equals(column: str | ColumnRef, value: Any) -> Comparison:
    """``column = value`` with a string column name or an explicit reference."""
    reference = column if isinstance(column, ColumnRef) else col(column)
    return Comparison(reference, "=", _as_expression(value))


def NotEquals(column: str | ColumnRef, value: Any) -> Comparison:
    """``column != value``."""
    reference = column if isinstance(column, ColumnRef) else col(column)
    return Comparison(reference, "!=", _as_expression(value))


def LessThan(column: str | ColumnRef, value: Any) -> Comparison:
    """``column < value``."""
    reference = column if isinstance(column, ColumnRef) else col(column)
    return Comparison(reference, "<", _as_expression(value))


def LessEqual(column: str | ColumnRef, value: Any) -> Comparison:
    """``column <= value``."""
    reference = column if isinstance(column, ColumnRef) else col(column)
    return Comparison(reference, "<=", _as_expression(value))


def GreaterThan(column: str | ColumnRef, value: Any) -> Comparison:
    """``column > value``."""
    reference = column if isinstance(column, ColumnRef) else col(column)
    return Comparison(reference, ">", _as_expression(value))


def GreaterEqual(column: str | ColumnRef, value: Any) -> Comparison:
    """``column >= value``."""
    reference = column if isinstance(column, ColumnRef) else col(column)
    return Comparison(reference, ">=", _as_expression(value))


def ColumnEquals(left: str | ColumnRef, right: str | ColumnRef) -> Comparison:
    """``left_column = right_column`` (join predicate)."""
    left_ref = left if isinstance(left, ColumnRef) else col(left)
    right_ref = right if isinstance(right, ColumnRef) else col(right)
    return Comparison(left_ref, "=", right_ref)


def conjunction(predicates: Sequence[Predicate]) -> Predicate:
    """AND together a sequence of predicates (empty → TRUE, singleton → itself)."""
    predicates = list(predicates)
    if not predicates:
        return TruePredicate()
    if len(predicates) == 1:
        return predicates[0]
    return And(*predicates)
