"""Schema objects: attributes, relation schemas and database schemas.

Attributes are always owned by a relation, and their *qualified name*
(``Relation.attribute``) is the identity used throughout the reproduction —
correspondences, mappings and reformulation all speak in qualified names so
that the same attribute name occurring in two relations (``PO.orderNum`` and
``Item.orderNum`` in the paper's target schemas) never collides.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.relational.types import DataType


@dataclass(frozen=True)
class Attribute:
    """A single attribute (column) of a relation schema.

    Parameters
    ----------
    relation:
        Name of the owning relation.
    name:
        Attribute name, unique within the owning relation.
    data_type:
        Declared :class:`~repro.relational.types.DataType`.
    description:
        Optional human-readable documentation string; the matcher does not
        look at it (it is name-based, like the paper's COMA++ configuration)
        but examples print it.
    """

    relation: str
    name: str
    data_type: DataType = DataType.STRING
    description: str = ""

    @property
    def qualified(self) -> str:
        """The globally unique ``relation.name`` identifier."""
        return f"{self.relation}.{self.name}"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.qualified


class RelationSchema:
    """An ordered collection of :class:`Attribute` belonging to one relation."""

    def __init__(self, name: str, attributes: Iterable[Attribute]):
        self.name = name
        self.attributes: tuple[Attribute, ...] = tuple(attributes)
        names = [attribute.name for attribute in self.attributes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate attribute names in relation {name!r}: {names}")
        for attribute in self.attributes:
            if attribute.relation != name:
                raise ValueError(
                    f"attribute {attribute.qualified} does not belong to relation {name!r}"
                )
        self._by_name = {attribute.name: attribute for attribute in self.attributes}

    @classmethod
    def build(
        cls,
        name: str,
        columns: Iterable[tuple[str, DataType] | tuple[str, DataType, str]],
    ) -> "RelationSchema":
        """Convenience constructor from ``(name, type[, description])`` tuples."""
        attributes = []
        for column in columns:
            if len(column) == 2:
                col_name, data_type = column
                description = ""
            else:
                col_name, data_type, description = column
            attributes.append(
                Attribute(
                    relation=name,
                    name=col_name,
                    data_type=data_type,
                    description=description,
                )
            )
        return cls(name, attributes)

    @property
    def attribute_names(self) -> list[str]:
        """Unqualified attribute names, in declaration order."""
        return [attribute.name for attribute in self.attributes]

    @property
    def qualified_names(self) -> list[str]:
        """Qualified attribute names, in declaration order."""
        return [attribute.qualified for attribute in self.attributes]

    def attribute(self, name: str) -> Attribute:
        """Return the attribute called ``name`` (unqualified)."""
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"relation {self.name!r} has no attribute {name!r}") from None

    def has_attribute(self, name: str) -> bool:
        """True when the relation declares an attribute called ``name``."""
        return name in self._by_name

    def __len__(self) -> int:
        return len(self.attributes)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self.attributes)

    def __contains__(self, name: object) -> bool:
        return name in self._by_name

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RelationSchema):
            return NotImplemented
        return self.name == other.name and self.attributes == other.attributes

    def __hash__(self) -> int:
        return hash((self.name, self.attributes))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RelationSchema({self.name!r}, {len(self.attributes)} attributes)"


class DatabaseSchema:
    """A named set of :class:`RelationSchema` (a source or target schema).

    The paper's ``S`` (TPC-H-like purchase order schema) and the three target
    schemas (Excel, Noris, Paragon) are instances of this class.
    """

    def __init__(self, name: str, relations: Iterable[RelationSchema]):
        self.name = name
        self.relations: dict[str, RelationSchema] = {}
        for relation in relations:
            if relation.name in self.relations:
                raise ValueError(f"duplicate relation {relation.name!r} in schema {name!r}")
            self.relations[relation.name] = relation
        self._attribute_index: dict[str, Attribute] = {}
        for relation in self.relations.values():
            for attribute in relation:
                self._attribute_index[attribute.qualified] = attribute

    @property
    def relation_names(self) -> list[str]:
        """Relation names in insertion order."""
        return list(self.relations)

    @property
    def attributes(self) -> list[Attribute]:
        """All attributes of all relations, in declaration order."""
        return [
            attribute for relation in self.relations.values() for attribute in relation
        ]

    @property
    def attribute_count(self) -> int:
        """Total number of attributes across all relations."""
        return len(self._attribute_index)

    def relation(self, name: str) -> RelationSchema:
        """Return the relation schema called ``name``."""
        try:
            return self.relations[name]
        except KeyError:
            raise KeyError(f"schema {self.name!r} has no relation {name!r}") from None

    def has_relation(self, name: str) -> bool:
        """True when the schema declares a relation called ``name``."""
        return name in self.relations

    def attribute(self, qualified: str) -> Attribute:
        """Return the attribute identified by its qualified name."""
        try:
            return self._attribute_index[qualified]
        except KeyError:
            raise KeyError(
                f"schema {self.name!r} has no attribute {qualified!r}"
            ) from None

    def has_attribute(self, qualified: str) -> bool:
        """True when ``qualified`` identifies an attribute of this schema."""
        return qualified in self._attribute_index

    def owning_relation(self, qualified: str) -> RelationSchema:
        """Return the relation schema that owns the qualified attribute."""
        attribute = self.attribute(qualified)
        return self.relations[attribute.relation]

    def __iter__(self) -> Iterator[RelationSchema]:
        return iter(self.relations.values())

    def __len__(self) -> int:
        return len(self.relations)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DatabaseSchema({self.name!r}, {len(self.relations)} relations, "
            f"{self.attribute_count} attributes)"
        )
