"""In-memory relational engine substrate.

The engine provides everything the reproduction needs to execute *source
queries* over a *source instance*:

* :mod:`repro.relational.schema` — attributes, relation schemas, database
  schemas.
* :mod:`repro.relational.relation` — the :class:`Relation` container.
* :mod:`repro.relational.database` — a catalog of named relations (the
  source instance ``D`` of the paper).
* :mod:`repro.relational.predicates` — a small predicate AST (comparisons and
  boolean connectives) evaluated against named attributes.
* :mod:`repro.relational.algebra` — logical plan nodes (scan, selection,
  projection, Cartesian product, join, aggregation and materialised
  relations).
* :mod:`repro.relational.executor` — a recursive plan evaluator instrumented
  with operator and row counters (:mod:`repro.relational.stats`), with
  pluggable row and columnar execution engines.
* :mod:`repro.relational.columnar` — the :class:`ColumnBatch` column-major
  container and the column-level predicate/expression compilation behind the
  ``"columnar"`` engine.
* :mod:`repro.relational.indexes` — hash indexes used to accelerate equality
  selections on base relations.
* :mod:`repro.relational.plancache` — bounded plan-result cache and
  materialization policies powering shared (multi-query) execution.
* :mod:`repro.relational.parallel` — horizontal sharding, worker pools and
  the morsel-driven operator kernels behind the ``"parallel"`` engine.
* :mod:`repro.relational.optimizer` — cost-based query optimizer (statistics
  catalog, rewrite rules, join ordering, ``explain()``) applied between
  reformulation and execution.
* :mod:`repro.relational.csvio` — simple CSV persistence.
"""

from repro.relational.algebra import (
    Aggregate,
    Join,
    Materialized,
    PlanNode,
    Product,
    Project,
    Scan,
    Select,
    Union,
)
from repro.relational.columnar import ColumnBatch, expression_values, predicate_mask
from repro.relational.database import Database
from repro.relational.executor import DEFAULT_ENGINE, ENGINES, Executor
from repro.relational.parallel import ParallelConfig
from repro.relational.plancache import (
    MaterializationPolicy,
    MaterializeAll,
    MaterializeNone,
    MaterializeSelected,
    PlanCache,
    PlanCacheStats,
)
from repro.relational.predicates import (
    And,
    Between,
    Comparison,
    Equals,
    FalsePredicate,
    GreaterEqual,
    GreaterThan,
    In,
    LessEqual,
    LessThan,
    Not,
    NotEquals,
    Or,
    Predicate,
    TruePredicate,
)
from repro.relational.relation import Relation, combine_labels, resolve_label, unique_labels
from repro.relational.schema import Attribute, DatabaseSchema, RelationSchema
from repro.relational.stats import ExecutionStats

__all__ = [
    "Aggregate",
    "Join",
    "Materialized",
    "PlanNode",
    "Product",
    "Project",
    "Scan",
    "Select",
    "Union",
    "ColumnBatch",
    "expression_values",
    "predicate_mask",
    "Database",
    "DEFAULT_ENGINE",
    "ENGINES",
    "Executor",
    "ParallelConfig",
    "MaterializationPolicy",
    "MaterializeAll",
    "MaterializeNone",
    "MaterializeSelected",
    "PlanCache",
    "PlanCacheStats",
    "And",
    "Between",
    "Comparison",
    "Equals",
    "GreaterEqual",
    "GreaterThan",
    "In",
    "LessEqual",
    "LessThan",
    "FalsePredicate",
    "Not",
    "NotEquals",
    "Or",
    "Predicate",
    "TruePredicate",
    "Relation",
    "combine_labels",
    "resolve_label",
    "unique_labels",
    "Attribute",
    "DatabaseSchema",
    "RelationSchema",
    "ExecutionStats",
]
