"""The :class:`Relation` container — an ordered bag of rows with labelled columns.

A relation produced by the executor carries *column labels* rather than a full
:class:`~repro.relational.schema.RelationSchema`: labels are strings of the
form ``alias.attribute`` (for scanned base relations) or whatever a projection
chose to call its outputs.  Labels are what predicates and projections resolve
against, and what o-sharing uses to decide whether an intermediate result
already covers the source attributes an operator needs.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.relational.schema import RelationSchema

Row = tuple

#: Monotonic source of data-version tokens (see :attr:`Relation.version`).
_DATA_VERSIONS = itertools.count(1)

#: The delta kinds a :class:`Relation` write can produce.
DELTA_APPEND = "append"
DELTA_UPDATE = "update"
DELTA_DELETE = "delete"

#: Deltas retained per relation lineage; consumers needing a chain older
#: than this fall back to full recomputation (the conservative path).
DELTA_LOG_LIMIT = 64


@dataclass(frozen=True)
class Delta:
    """One write, described precisely enough to maintain caches incrementally.

    A delta records the transition ``base_version → version`` of one
    relation's data: ``append`` carries the appended rows, ``update`` the
    affected row positions plus their replacement rows, ``delete`` the
    removed positions (positions refer to the *pre-write* row numbering).
    A wholesale :meth:`~repro.relational.database.Database.set_relation`
    has no delta — consumers receive ``None`` and must invalidate.
    """

    kind: str
    base_version: int
    version: int
    #: appended rows (``append``) or replacement rows (``update``)
    rows: tuple[Row, ...] = ()
    #: affected pre-write row positions (``update``/``delete``), ascending
    positions: tuple[int, ...] = ()

    @property
    def is_append(self) -> bool:
        """True for the monotone (cache-extending) delta kind."""
        return self.kind == DELTA_APPEND

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        payload = len(self.positions) if self.positions else len(self.rows)
        return (
            f"Delta({self.kind}, v{self.base_version}->v{self.version}, "
            f"{payload} rows)"
        )


def missing_column_error(columns: Sequence[str], label: str, display_name: str) -> KeyError:
    """The standard error for a label that is not among ``columns``."""
    return KeyError(
        f"relation {display_name or '<anonymous>'} has no column {label!r}; "
        f"columns are {list(columns)}"
    )


def resolve_label(columns: Sequence[str], name: str, qualifier: str | None = None) -> int:
    """Resolve an attribute reference against a plain label sequence.

    Mirrors :meth:`Relation.resolve` exactly (used by the optimizer's schema
    inference, which works on label tuples without materialised data): with a
    qualifier the exact label ``qualifier.name`` must exist; without one, an
    exact label match wins, then a unique ``*.name`` suffix match.
    """
    if qualifier is not None:
        label = f"{qualifier}.{name}"
        for i, candidate in enumerate(columns):
            if candidate == label:
                return i
        raise missing_column_error(columns, label, "")
    for i, candidate in enumerate(columns):
        if candidate == name:
            return i
    return resolve_unqualified(columns, name)


def unique_labels(labels: Sequence[str]) -> list[str]:
    """Deduplicate output labels (a projection may repeat a column).

    Shared by the executor's projection operator and the optimizer's schema
    inference so inferred output columns can never drift from executed ones.
    """
    seen: dict[str, int] = {}
    unique: list[str] = []
    for label in labels:
        seen[label] = seen.get(label, 0) + 1
        unique.append(label if seen[label] == 1 else f"{label}#{seen[label]}")
    return unique


def combine_labels(left: Sequence[str], right: Sequence[str]) -> list[str]:
    """Concatenate column labels, suffixing the right side on collisions.

    Shared by the executor's product/join operators and the optimizer's schema
    inference (same drift-prevention rationale as :func:`unique_labels`).
    """
    columns = list(left)
    taken = set(columns)
    for label in right:
        candidate = label
        counter = 2
        while candidate in taken:
            candidate = f"{label}#{counter}"
            counter += 1
        taken.add(candidate)
        columns.append(candidate)
    return columns


def resolve_unqualified(columns: Sequence[str], name: str) -> int:
    """Resolve an unqualified attribute reference against column labels.

    ``name`` must match exactly one ``*.name`` suffix (exact matches are the
    caller's fast path).  Shared by :class:`Relation` and
    :class:`~repro.relational.columnar.ColumnBatch` so the two engines can
    never drift apart on resolution semantics.
    """
    suffix = f".{name}"
    matches = [i for i, label in enumerate(columns) if label.endswith(suffix)]
    if not matches:
        raise KeyError(
            f"no column matches unqualified reference {name!r}; "
            f"columns are {list(columns)}"
        )
    if len(matches) > 1:
        ambiguous = [columns[i] for i in matches]
        raise KeyError(f"ambiguous reference {name!r}: matches {ambiguous}")
    return matches[0]


class Relation:
    """An ordered bag of rows over a fixed list of column labels."""

    __slots__ = (
        "columns",
        "name",
        "version",
        "_column_positions",
        "_column_cache",
        "_shard_cache",
        "_vector_cache",
        "_rows",
        "_length",
        "_shared_rows",
        "_deltas",
        "_delta_lock",
    )

    def __init__(
        self,
        columns: Sequence[str],
        rows: Iterable[Sequence[Any]] = (),
        name: str = "",
    ):
        self.columns: tuple[str, ...] = tuple(columns)
        if len(set(self.columns)) != len(self.columns):
            raise ValueError(f"duplicate column labels: {self.columns}")
        self._rows: list[Row] | None = [tuple(row) for row in rows]
        for row in self._rows:
            if len(row) != len(self.columns):
                raise ValueError(
                    f"row width {len(row)} does not match column count {len(self.columns)}"
                )
        self._length = len(self._rows)
        self.name = name
        #: Data-version token: changes on every mutation, and is shared by
        #: derived relations that hold the *same* rows (``prefixed``,
        #: ``rename``), so caches keyed on it survive relabelling.
        self.version = next(_DATA_VERSIONS)
        self._column_positions = {label: i for i, label in enumerate(self.columns)}
        # Shared one-slot holder for the lazily built column-major view (see
        # column_data); derived relations over the same rows share the holder.
        self._column_cache: list = [None]
        # Shared one-slot holder for horizontal shards of the column data,
        # keyed on the version token exactly like the column-major cache (see
        # repro.relational.parallel.partition.shard_relation).
        self._shard_cache: list = [None]
        # Shared one-slot holder for the vector engine's classified NumPy
        # columns, keyed on the version token (see repro.relational.vector).
        self._vector_cache: list = [None]
        # True while the row list is shared with a relabelled view; a
        # mutation copies it first (copy-on-write) so views stay isolated.
        self._shared_rows = False
        # Bounded log of Delta records describing this lineage's writes;
        # shared with relabelled views (they share the data the deltas
        # describe).  See deltas_between.
        self._deltas: list[Delta] = []
        # Guards append/trim/walk of the shared delta log: a writer trimming
        # the list while a deltas_between walker snapshots it must never
        # produce a torn chain.  Shared with relabelled views like the log.
        self._delta_lock = threading.Lock()

    @property
    def rows(self) -> list[Row]:
        """The row-major tuples, materialised on first access.

        A relation built by :meth:`from_columns` starts with only the
        column-major view; its rows are assembled here the first time
        something actually iterates tuples.  Intermediate results that flow
        straight back into the columnar engine therefore never pay the
        row-assembly cost.
        """
        rows = self._rows
        if rows is None:
            data = self._column_cache[0][1]
            rows = list(zip(*data)) if data else [()] * self._length
            self._rows = rows
        return rows

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_schema(
        cls,
        schema: RelationSchema,
        rows: Iterable[Sequence[Any]] = (),
        alias: str | None = None,
    ) -> "Relation":
        """Build a relation whose labels are ``alias.attribute`` for ``schema``."""
        prefix = alias or schema.name
        columns = [f"{prefix}.{attribute.name}" for attribute in schema]
        return cls(columns, rows, name=prefix)

    @classmethod
    def from_dicts(cls, columns: Sequence[str], dicts: Iterable[dict]) -> "Relation":
        """Build a relation from a sequence of ``{label: value}`` dictionaries."""
        rows = [tuple(record.get(label) for label in columns) for record in dicts]
        return cls(columns, rows)

    @classmethod
    def empty(cls, columns: Sequence[str] = (), name: str = "") -> "Relation":
        """An empty relation (possibly with zero columns)."""
        return cls(columns, [], name=name)

    @classmethod
    def from_columns(
        cls,
        columns: Sequence[str],
        data: Sequence[Sequence[Any]],
        name: str = "",
    ) -> "Relation":
        """Build a relation from column-major ``data`` (one sequence per column).

        This is the fast boundary between the columnar execution engine and
        the row-major :class:`Relation`: rows are assembled in one ``zip``
        pass and the column-major view is kept, so converting the result back
        into a :class:`~repro.relational.columnar.ColumnBatch` is free.  The
        column sequences are adopted as-is and must not be mutated afterwards.
        """
        if len(data) != len(columns):
            raise ValueError(
                f"got {len(data)} columns of data for {len(columns)} column labels"
            )
        relation = cls.__new__(cls)
        relation.columns = tuple(columns)
        if len(set(relation.columns)) != len(relation.columns):
            raise ValueError(f"duplicate column labels: {relation.columns}")
        relation._rows = None  # assembled lazily by the ``rows`` property
        relation._length = len(data[0]) if data else 0
        relation.name = name
        relation.version = next(_DATA_VERSIONS)
        relation._column_positions = {label: i for i, label in enumerate(relation.columns)}
        relation._column_cache = [
            (
                relation.version,
                [column if isinstance(column, list) else list(column) for column in data],
            )
        ]
        relation._shard_cache = [None]
        relation._vector_cache = [None]
        relation._shared_rows = False
        relation._deltas = []
        relation._delta_lock = threading.Lock()
        return relation

    # ------------------------------------------------------------------ #
    # column handling
    # ------------------------------------------------------------------ #
    def column_index(self, label: str) -> int:
        """Position of an exact column label."""
        try:
            return self._column_positions[label]
        except KeyError:
            raise missing_column_error(self.columns, label, self.name) from None

    def has_column(self, label: str) -> bool:
        """True when the exact label is present."""
        return label in self._column_positions

    def resolve(self, name: str, qualifier: str | None = None) -> int:
        """Resolve an attribute reference to a column position.

        With a qualifier the label ``qualifier.name`` must exist.  Without a
        qualifier the unqualified ``name`` must match exactly one column
        suffix (``*.name``) or an exact label ``name``.
        """
        if qualifier is not None:
            return self.column_index(f"{qualifier}.{name}")
        if name in self._column_positions:
            return self._column_positions[name]
        return resolve_unqualified(self.columns, name)

    def _relabelled_view(self, columns: Sequence[str], name: str) -> "Relation":
        """A view over this relation's data with different column labels.

        The rows, version token and column-major holder are shared, so the
        view costs O(columns) regardless of the row count and caches keyed on
        the version token keep hitting.  Sharing is copy-on-write: a later
        mutation of either relation copies the row list first (see
        :meth:`append`), so views keep their snapshot semantics.
        """
        view = Relation.__new__(Relation)
        view.columns = tuple(columns)
        if len(set(view.columns)) != len(view.columns):
            raise ValueError(f"duplicate column labels: {view.columns}")
        view._rows = self._rows
        view._length = self._length
        view.name = name
        view.version = self.version
        view._column_positions = {label: i for i, label in enumerate(view.columns)}
        view._column_cache = self._column_cache
        view._shard_cache = self._shard_cache
        view._vector_cache = self._vector_cache
        view._deltas = self._deltas
        view._delta_lock = self._delta_lock
        if self._rows is not None:
            self._shared_rows = True
            view._shared_rows = True
        else:
            # Both sides are lazy: each will assemble its own list from the
            # shared (immutable) column data, so no copy-on-write is needed.
            view._shared_rows = False
        return view

    def rename(self, renaming: dict[str, str]) -> "Relation":
        """Return a relation with columns renamed per ``renaming`` (missing keys kept)."""
        columns = [renaming.get(label, label) for label in self.columns]
        return self._relabelled_view(columns, self.name)

    def prefixed(self, prefix: str) -> "Relation":
        """Return a copy whose column labels are requalified with ``prefix``."""
        columns = [f"{prefix}.{label.split('.', 1)[-1]}" for label in self.columns]
        return self._relabelled_view(columns, prefix)

    def column_data(self) -> list[list]:
        """The column-major view of the rows (one list per column), cached.

        The cache is keyed on :attr:`version`, so it survives relabelling
        (``prefixed``/``rename`` views share both the rows and the holder) and
        is rebuilt after a mutation.  The returned lists are shared — callers
        must treat them as read-only.
        """
        cached = self._column_cache[0]
        if cached is not None and cached[0] == self.version:
            return cached[1]
        if self.rows:
            data = [list(column) for column in zip(*self.rows)]
        else:
            data = [[] for _ in self.columns]
        self._column_cache[0] = (self.version, data)
        return data

    # ------------------------------------------------------------------ #
    # row handling
    # ------------------------------------------------------------------ #
    def _validated(self, rows: Iterable[Sequence[Any]]) -> list[Row]:
        """Rows as width-checked tuples."""
        validated = [tuple(row) for row in rows]
        width = len(self.columns)
        for row in validated:
            if len(row) != width:
                raise ValueError(
                    f"row width {len(row)} does not match column count {width}"
                )
        return validated

    def _record_delta(self, delta: Delta) -> None:
        with self._delta_lock:
            log = self._deltas
            log.append(delta)
            if len(log) > DELTA_LOG_LIMIT:
                del log[: len(log) - DELTA_LOG_LIMIT]

    def _fresh_columns(self, version: int) -> list[list] | None:
        """The cached column-major lists, only if they match ``version``."""
        cached = self._column_cache[0]
        if cached is not None and cached[0] == version:
            return cached[1]
        return None

    def _patched_shards(self, delta: Delta) -> list:
        """A replacement shard-cache holder with ``delta`` applied, or empty.

        Only the chunk-sharded (monotone) entries can be extended by an
        append; anything else drops the cache and lets the next parallel
        execution rebuild it.
        """
        cached = self._shard_cache[0]
        if cached is None or cached[0] != delta.base_version or not delta.is_append:
            return [None]
        from repro.relational.parallel.partition import patch_shard_entries

        patched = patch_shard_entries(cached[1], delta)
        if patched is None:
            return [None]
        return [(delta.version, patched)]

    def append_rows(self, rows: Iterable[Sequence[Any]]) -> Delta | None:
        """Append many rows, returning the :class:`Delta` describing the write.

        The append is applied *incrementally* to the version-keyed caches:
        fresh column-major lists are extended (into brand-new lists — the old
        ones may be aliased by views and cached batches) and chunk-sharded
        entries grow their last span.  Data is swapped before the version
        token is bumped, so a concurrent version-checked reader can observe
        (old version, new data) — which it treats as stale — but never the
        reverse.  Returns ``None`` (and writes nothing) for an empty input.
        """
        appended = self._validated(rows)
        if not appended:
            return None
        base_version = self.version
        old_rows = self.rows  # materialise before the swap
        fresh = self._fresh_columns(base_version)
        new_version = next(_DATA_VERSIONS)
        delta = Delta(
            DELTA_APPEND, base_version, new_version, rows=tuple(appended)
        )
        # New list: relabelled views keep aliasing the old one untouched.
        self._rows = old_rows + appended
        self._length += len(appended)
        self._shared_rows = False
        if fresh is not None:
            patched = [
                old + [row[i] for row in appended] for i, old in enumerate(fresh)
            ]
            self._column_cache = [(new_version, patched)]
        else:
            self._column_cache = [None]
        self._shard_cache = self._patched_shards(delta)
        # New holder carrying the old payload: relabelled views keep their
        # snapshot via the old holder, while the vector engine rolls this
        # one forward lazily through the append-delta chain on next use.
        self._vector_cache = [self._vector_cache[0]]
        self._record_delta(delta)
        self.version = new_version
        return delta

    def update_rows(
        self, positions: Sequence[int], rows: Iterable[Sequence[Any]]
    ) -> Delta | None:
        """Replace the rows at ``positions`` (pre-write numbering) with ``rows``."""
        replacements = self._validated(rows)
        targets = [int(position) for position in positions]
        if len(targets) != len(replacements):
            raise ValueError(
                f"{len(targets)} positions for {len(replacements)} replacement rows"
            )
        if not targets:
            return None
        if len(set(targets)) != len(targets):
            raise ValueError(f"duplicate update positions: {targets}")
        for position in targets:
            if not 0 <= position < self._length:
                raise IndexError(
                    f"row position {position} out of range for {self._length} rows"
                )
        order = sorted(range(len(targets)), key=targets.__getitem__)
        targets = [targets[i] for i in order]
        replacements = [replacements[i] for i in order]
        base_version = self.version
        old_rows = self.rows
        fresh = self._fresh_columns(base_version)
        new_version = next(_DATA_VERSIONS)
        delta = Delta(
            DELTA_UPDATE,
            base_version,
            new_version,
            rows=tuple(replacements),
            positions=tuple(targets),
        )
        new_rows = list(old_rows)
        for position, row in zip(targets, replacements):
            new_rows[position] = row
        self._rows = new_rows
        self._shared_rows = False
        if fresh is not None:
            patched = []
            for i, old in enumerate(fresh):
                column = list(old)
                for position, row in zip(targets, replacements):
                    column[position] = row[i]
                patched.append(column)
            self._column_cache = [(new_version, patched)]
        else:
            self._column_cache = [None]
        self._shard_cache = [None]
        self._vector_cache = [None]  # non-append: arrays cannot roll forward
        self._record_delta(delta)
        self.version = new_version
        return delta

    def delete_rows(self, positions: Sequence[int]) -> Delta | None:
        """Remove the rows at ``positions`` (pre-write numbering)."""
        targets = sorted({int(position) for position in positions})
        if not targets:
            return None
        for position in targets:
            if not 0 <= position < self._length:
                raise IndexError(
                    f"row position {position} out of range for {self._length} rows"
                )
        base_version = self.version
        old_rows = self.rows
        fresh = self._fresh_columns(base_version)
        new_version = next(_DATA_VERSIONS)
        delta = Delta(
            DELTA_DELETE, base_version, new_version, positions=tuple(targets)
        )
        doomed = set(targets)
        self._rows = [row for i, row in enumerate(old_rows) if i not in doomed]
        self._length -= len(targets)
        self._shared_rows = False
        if fresh is not None:
            patched = [
                [value for i, value in enumerate(old) if i not in doomed]
                for old in fresh
            ]
            self._column_cache = [(new_version, patched)]
        else:
            self._column_cache = [None]
        self._shard_cache = [None]
        self._vector_cache = [None]  # non-append: arrays cannot roll forward
        self._record_delta(delta)
        self.version = new_version
        return delta

    def deltas_between(
        self, old_version: int, new_version: int | None = None
    ) -> list[Delta] | None:
        """The delta chain taking ``old_version`` to ``new_version``, oldest first.

        ``new_version`` defaults to the current :attr:`version`.  Returns an
        empty list when the versions are equal, and ``None`` when the chain
        cannot be reconstructed (log truncation, or an unrelated lineage such
        as a wholesale replacement) — callers must then recompute from
        scratch.
        """
        target = self.version if new_version is None else new_version
        if old_version == target:
            return []
        # Snapshot under the shared lock: a concurrent writer appending and
        # trimming the shared log mid-walk could otherwise tear the chain
        # into one that silently skips a delta.  A chain the snapshot cannot
        # complete returns None — the full-recompute fallback.
        with self._delta_lock:
            deltas = list(self._deltas)
        by_version = {delta.version: delta for delta in deltas}
        chain: list[Delta] = []
        cursor = target
        while cursor != old_version:
            delta = by_version.get(cursor)
            if delta is None:
                return None
            chain.append(delta)
            cursor = delta.base_version
        chain.reverse()
        return chain

    def append(self, row: Sequence[Any]) -> None:
        """Append one row (validated for width)."""
        self.append_rows([row])

    def extend(self, rows: Iterable[Sequence[Any]]) -> None:
        """Append many rows."""
        self.append_rows(rows)

    def value(self, row: Row, label: str) -> Any:
        """Value of ``label`` within ``row``."""
        return row[self.column_index(label)]

    def project_rows(self, indexes: Sequence[int]) -> list[Row]:
        """Rows restricted to the given column positions."""
        return [tuple(row[i] for i in indexes) for row in self.rows]

    def filter(self, keep: Callable[[Row], bool]) -> "Relation":
        """A new relation containing the rows for which ``keep`` returns True."""
        return Relation(self.columns, [row for row in self.rows if keep(row)], name=self.name)

    def distinct(self) -> "Relation":
        """A new relation with duplicate rows removed (first occurrence kept)."""
        seen: set[Row] = set()
        rows = []
        for row in self.rows:
            if row not in seen:
                seen.add(row)
                rows.append(row)
        return Relation(self.columns, rows, name=self.name)

    def to_dicts(self) -> list[dict[str, Any]]:
        """Rows as ``{label: value}`` dictionaries (handy in tests and examples)."""
        return [dict(zip(self.columns, row)) for row in self.rows]

    # ------------------------------------------------------------------ #
    # dunder plumbing
    # ------------------------------------------------------------------ #
    @property
    def is_empty(self) -> bool:
        """True when the relation holds no rows."""
        return self._length == 0

    def __len__(self) -> int:
        return self._length

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return self.columns == other.columns and self.rows == other.rows

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Relation(name={self.name!r}, columns={list(self.columns)}, "
            f"rows={len(self.rows)})"
        )

    def pretty(self, limit: int = 10) -> str:
        """A small fixed-width rendering used by the examples."""
        header = " | ".join(self.columns)
        divider = "-" * len(header)
        lines = [header, divider]
        for row in self.rows[:limit]:
            lines.append(" | ".join(str(value) for value in row))
        if len(self.rows) > limit:
            lines.append(f"... ({len(self.rows) - limit} more rows)")
        return "\n".join(lines)
