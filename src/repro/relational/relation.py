"""The :class:`Relation` container — an ordered bag of rows with labelled columns.

A relation produced by the executor carries *column labels* rather than a full
:class:`~repro.relational.schema.RelationSchema`: labels are strings of the
form ``alias.attribute`` (for scanned base relations) or whatever a projection
chose to call its outputs.  Labels are what predicates and projections resolve
against, and what o-sharing uses to decide whether an intermediate result
already covers the source attributes an operator needs.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.relational.schema import RelationSchema

Row = tuple

#: Monotonic source of data-version tokens (see :attr:`Relation.version`).
_DATA_VERSIONS = itertools.count(1)


class Relation:
    """An ordered bag of rows over a fixed list of column labels."""

    __slots__ = ("columns", "rows", "name", "version", "_column_positions")

    def __init__(
        self,
        columns: Sequence[str],
        rows: Iterable[Sequence[Any]] = (),
        name: str = "",
    ):
        self.columns: tuple[str, ...] = tuple(columns)
        if len(set(self.columns)) != len(self.columns):
            raise ValueError(f"duplicate column labels: {self.columns}")
        self.rows: list[Row] = [tuple(row) for row in rows]
        for row in self.rows:
            if len(row) != len(self.columns):
                raise ValueError(
                    f"row width {len(row)} does not match column count {len(self.columns)}"
                )
        self.name = name
        #: Data-version token: changes on every mutation, and is shared by
        #: derived relations that hold the *same* rows (``prefixed``,
        #: ``rename``), so caches keyed on it survive relabelling.
        self.version = next(_DATA_VERSIONS)
        self._column_positions = {label: i for i, label in enumerate(self.columns)}

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_schema(
        cls,
        schema: RelationSchema,
        rows: Iterable[Sequence[Any]] = (),
        alias: str | None = None,
    ) -> "Relation":
        """Build a relation whose labels are ``alias.attribute`` for ``schema``."""
        prefix = alias or schema.name
        columns = [f"{prefix}.{attribute.name}" for attribute in schema]
        return cls(columns, rows, name=prefix)

    @classmethod
    def from_dicts(cls, columns: Sequence[str], dicts: Iterable[dict]) -> "Relation":
        """Build a relation from a sequence of ``{label: value}`` dictionaries."""
        rows = [tuple(record.get(label) for label in columns) for record in dicts]
        return cls(columns, rows)

    @classmethod
    def empty(cls, columns: Sequence[str] = (), name: str = "") -> "Relation":
        """An empty relation (possibly with zero columns)."""
        return cls(columns, [], name=name)

    # ------------------------------------------------------------------ #
    # column handling
    # ------------------------------------------------------------------ #
    def column_index(self, label: str) -> int:
        """Position of an exact column label."""
        try:
            return self._column_positions[label]
        except KeyError:
            raise KeyError(
                f"relation {self.name or '<anonymous>'} has no column {label!r}; "
                f"columns are {list(self.columns)}"
            ) from None

    def has_column(self, label: str) -> bool:
        """True when the exact label is present."""
        return label in self._column_positions

    def resolve(self, name: str, qualifier: str | None = None) -> int:
        """Resolve an attribute reference to a column position.

        With a qualifier the label ``qualifier.name`` must exist.  Without a
        qualifier the unqualified ``name`` must match exactly one column
        suffix (``*.name``) or an exact label ``name``.
        """
        if qualifier is not None:
            return self.column_index(f"{qualifier}.{name}")
        if name in self._column_positions:
            return self._column_positions[name]
        suffix = f".{name}"
        matches = [i for i, label in enumerate(self.columns) if label.endswith(suffix)]
        if not matches:
            raise KeyError(
                f"no column matches unqualified reference {name!r}; "
                f"columns are {list(self.columns)}"
            )
        if len(matches) > 1:
            ambiguous = [self.columns[i] for i in matches]
            raise KeyError(f"ambiguous reference {name!r}: matches {ambiguous}")
        return matches[0]

    def rename(self, renaming: dict[str, str]) -> "Relation":
        """Return a relation with columns renamed per ``renaming`` (missing keys kept)."""
        columns = [renaming.get(label, label) for label in self.columns]
        view = Relation(columns, self.rows, name=self.name)
        view.version = self.version
        return view

    def prefixed(self, prefix: str) -> "Relation":
        """Return a copy whose column labels are requalified with ``prefix``."""
        columns = [f"{prefix}.{label.split('.', 1)[-1]}" for label in self.columns]
        view = Relation(columns, self.rows, name=prefix)
        view.version = self.version
        return view

    # ------------------------------------------------------------------ #
    # row handling
    # ------------------------------------------------------------------ #
    def append(self, row: Sequence[Any]) -> None:
        """Append one row (validated for width)."""
        row = tuple(row)
        if len(row) != len(self.columns):
            raise ValueError(
                f"row width {len(row)} does not match column count {len(self.columns)}"
            )
        self.rows.append(row)
        self.version = next(_DATA_VERSIONS)

    def extend(self, rows: Iterable[Sequence[Any]]) -> None:
        """Append many rows."""
        for row in rows:
            self.append(row)

    def value(self, row: Row, label: str) -> Any:
        """Value of ``label`` within ``row``."""
        return row[self.column_index(label)]

    def project_rows(self, indexes: Sequence[int]) -> list[Row]:
        """Rows restricted to the given column positions."""
        return [tuple(row[i] for i in indexes) for row in self.rows]

    def filter(self, keep: Callable[[Row], bool]) -> "Relation":
        """A new relation containing the rows for which ``keep`` returns True."""
        return Relation(self.columns, [row for row in self.rows if keep(row)], name=self.name)

    def distinct(self) -> "Relation":
        """A new relation with duplicate rows removed (first occurrence kept)."""
        seen: set[Row] = set()
        rows = []
        for row in self.rows:
            if row not in seen:
                seen.add(row)
                rows.append(row)
        return Relation(self.columns, rows, name=self.name)

    def to_dicts(self) -> list[dict[str, Any]]:
        """Rows as ``{label: value}`` dictionaries (handy in tests and examples)."""
        return [dict(zip(self.columns, row)) for row in self.rows]

    # ------------------------------------------------------------------ #
    # dunder plumbing
    # ------------------------------------------------------------------ #
    @property
    def is_empty(self) -> bool:
        """True when the relation holds no rows."""
        return not self.rows

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return self.columns == other.columns and self.rows == other.rows

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Relation(name={self.name!r}, columns={list(self.columns)}, "
            f"rows={len(self.rows)})"
        )

    def pretty(self, limit: int = 10) -> str:
        """A small fixed-width rendering used by the examples."""
        header = " | ".join(self.columns)
        divider = "-" * len(header)
        lines = [header, divider]
        for row in self.rows[:limit]:
            lines.append(" | ".join(str(value) for value in row))
        if len(self.rows) > limit:
            lines.append(f"... ({len(self.rows) - limit} more rows)")
        return "\n".join(lines)
