"""Morsel-driven parallel implementations of the columnar operators.

Every function here reproduces its serial twin in
:mod:`repro.relational.columnar` / :class:`~repro.relational.executor.Executor`
**byte-identically**: inputs are cut into contiguous morsels
(:func:`~repro.relational.parallel.partition.chunk_spans`), each morsel is
processed by a worker, and the per-morsel results are concatenated in span
order — which is exactly the serial iteration order.  Where an operator folds
floats (SUM/AVG), the fold happens per *group* with the members in serial
order, never across morsel partials, so even float rounding matches.

The kernels are building blocks; operator selection, statistics counting and
the per-node fallback to the serial columnar path stay in the executor.
"""

from __future__ import annotations

from collections import defaultdict
from itertools import chain
from typing import Any, Sequence

from repro.relational.columnar import ColumnBatch, predicate_mask
from repro.relational.parallel.config import ParallelConfig
from repro.relational.parallel.partition import cached_chunk_columns, chunk_spans
from repro.relational.parallel.pool import run_tasks
from repro.relational.predicates import Predicate
from repro.relational.vector import vector_predicate_mask


# --------------------------------------------------------------------------- #
# predicate masks (select, join residuals)
# --------------------------------------------------------------------------- #
def _mask_morsel(
    predicate: Predicate, labels: tuple, data: list[list], length: int
) -> list[bool]:
    """One morsel's mask (module-level so process pools can pickle the task).

    When NumPy is importable the morsel tries the vector kernel first — the
    mask is plain Python bools either way, so the parallel engine's results
    stay byte-identical while its sweeps run at array speed (this is what
    makes ``engine="parallel"`` pay off on column scans).
    """
    batch = ColumnBatch(labels, data, length=length)
    mask = vector_predicate_mask(predicate, batch)
    if mask is not None:
        return mask
    return predicate_mask(predicate, batch)


def _referenced_restriction(
    predicate: Predicate, batch: ColumnBatch
) -> tuple[tuple, list[int]] | None:
    """Only the columns the predicate touches (cuts slicing and pickling cost).

    Resolution against the restricted label subset cannot drift from the full
    batch: qualified/exact references keep their label, and an unqualified
    suffix match that is unique in the full label set stays unique in any
    subset of it.  ``None`` when the references cannot be resolved up front
    (the serial sweep will raise the same error the row engine would).
    """
    try:
        refs = predicate.referenced_columns()
        positions: list[int] = []
        seen: set[int] = set()
        for ref in refs:
            position = batch.resolve(ref.name, ref.qualifier)
            if position not in seen:
                seen.add(position)
                positions.append(position)
    except (KeyError, AttributeError):
        return None
    labels = tuple(batch.columns[i] for i in positions)
    return labels, positions


def parallel_predicate_mask(
    predicate: Predicate,
    batch: ColumnBatch,
    config: ParallelConfig,
    pools=None,
    tracer=None,
) -> list[bool]:
    """``predicate_mask`` computed over contiguous morsels in parallel.

    A batch that still wraps a relation (``ColumnBatch.from_relation``: a
    scanned base relation, or a shared intermediate re-fed as a
    ``Materialized`` leaf — o-sharing sweeps those once per e-unit) shards
    through the relation's version-keyed shard cache, so every sweep over
    the same unchanged relation — across operators, queries and relabelled
    views — reuses the morsel slices instead of re-slicing the columns.
    Only the columns the predicate references are sliced and cached.
    """
    n = len(batch)
    shards = config.shards_for(n)
    if shards <= 1:
        return predicate_mask(predicate, batch)
    restricted = _referenced_restriction(predicate, batch)
    if restricted is None:
        return predicate_mask(predicate, batch)
    labels, positions = restricted
    source = batch._source
    if source is not None:
        shard_data, spans = cached_chunk_columns(source, shards, positions)
        tasks = [
            (predicate, labels, data, b - a)
            for data, (a, b) in zip(shard_data, spans)
        ]
    else:
        spans = chunk_spans(n, shards)
        columns = [batch.data[p] for p in positions]
        tasks = [
            (predicate, labels, [column[a:b] for column in columns], b - a)
            for a, b in spans
        ]
    if tracer is not None:
        tracer.event("kernel", kernel="predicate_mask", morsels=len(tasks), rows=n)
    masks = run_tasks(
        config, _mask_morsel, tasks, picklable=True, pools=pools, tracer=tracer
    )
    return list(chain.from_iterable(masks))


# --------------------------------------------------------------------------- #
# hash join (build + probe over morsels)
# --------------------------------------------------------------------------- #
def _build_single(column: list, start: int, stop: int, drop_null: bool) -> dict:
    buckets: dict[Any, list[int]] = defaultdict(list)
    if drop_null:
        for i in range(start, stop):
            value = column[i]
            if value is not None and value == value:
                buckets[value].append(i)
    else:
        for i in range(start, stop):
            buckets[column[i]].append(i)
    return buckets


def _build_composite(
    columns: list[list], start: int, stop: int, drop_null: bool
) -> dict:
    buckets: dict[tuple, list[int]] = defaultdict(list)
    slices = [column[start:stop] for column in columns]
    if drop_null:
        for i, key in enumerate(zip(*slices)):
            if all(value is not None and value == value for value in key):
                buckets[key].append(start + i)
    else:
        for i, key in enumerate(zip(*slices)):
            buckets[key].append(start + i)
    return buckets


def _probe_single(
    column: list, start: int, stop: int, buckets: dict
) -> tuple[list[int], list[int]]:
    left_idx: list[int] = []
    right_idx: list[int] = []
    lookup = buckets.get
    for i in range(start, stop):
        bucket = lookup(column[i])
        if bucket:
            left_idx.extend([i] * len(bucket))
            right_idx.extend(bucket)
    return left_idx, right_idx


def _probe_composite(
    columns: list[list], start: int, stop: int, buckets: dict
) -> tuple[list[int], list[int]]:
    left_idx: list[int] = []
    right_idx: list[int] = []
    lookup = buckets.get
    slices = [column[start:stop] for column in columns]
    for i, key in enumerate(zip(*slices)):
        bucket = lookup(key)
        if bucket:
            left_idx.extend([start + i] * len(bucket))
            right_idx.extend(bucket)
    return left_idx, right_idx


def parallel_join_indices(
    left: ColumnBatch,
    right: ColumnBatch,
    pairs: Sequence[tuple[int, int]],
    pure_equi: bool,
    config: ParallelConfig,
    pools=None,
    tracer=None,
) -> tuple[list[int], list[int]]:
    """Matching ``(left_idx, right_idx)`` row indices of a hash equi-join.

    Build side (right) morsels produce local bucket dicts with *global* row
    indices; merging them in span order keeps every bucket's index list
    ascending — the order the serial build produces.  Probe side (left)
    morsels then scan the shared merged buckets; concatenating their outputs
    in span order is exactly the serial probe order.  Bucket dicts are shared
    memory, so both phases run on the thread pool regardless of
    ``config.kind``.
    """
    single = len(pairs) == 1
    if single:
        right_column = right.data[pairs[0][1]]
        left_column = left.data[pairs[0][0]]
    else:
        right_columns = [right.data[p[1]] for p in pairs]
        left_columns = [left.data[p[0]] for p in pairs]

    build_shards = config.shards_for(len(right))
    build_spans = chunk_spans(len(right), max(build_shards, 1))
    if tracer is not None:
        tracer.event(
            "kernel",
            kernel="join_build_probe",
            build_morsels=len(build_spans),
            build_rows=len(right),
            probe_rows=len(left),
        )
    if single:
        build_tasks = [(right_column, a, b, pure_equi) for a, b in build_spans]
        locals_ = run_tasks(
            config, _build_single, build_tasks, pools=pools, tracer=tracer
        )
    else:
        build_tasks = [(right_columns, a, b, pure_equi) for a, b in build_spans]
        locals_ = run_tasks(
            config, _build_composite, build_tasks, pools=pools, tracer=tracer
        )
    if len(locals_) == 1:
        buckets = locals_[0]
    else:
        buckets = {}
        for local in locals_:
            for key, indices in local.items():
                existing = buckets.get(key)
                if existing is None:
                    buckets[key] = indices
                else:
                    existing.extend(indices)

    probe_shards = config.shards_for(len(left))
    probe_spans = chunk_spans(len(left), max(probe_shards, 1))
    if single:
        probe_tasks = [(left_column, a, b, buckets) for a, b in probe_spans]
        parts = run_tasks(
            config, _probe_single, probe_tasks, pools=pools, tracer=tracer
        )
    else:
        probe_tasks = [(left_columns, a, b, buckets) for a, b in probe_spans]
        parts = run_tasks(
            config, _probe_composite, probe_tasks, pools=pools, tracer=tracer
        )
    left_idx = list(chain.from_iterable(part[0] for part in parts))
    right_idx = list(chain.from_iterable(part[1] for part in parts))
    return left_idx, right_idx


# --------------------------------------------------------------------------- #
# grouping and aggregation
# --------------------------------------------------------------------------- #
def _group_morsel(key_columns: list[list], start: int, stop: int) -> dict:
    groups: dict[tuple, list[int]] = {}
    slices = [column[start:stop] for column in key_columns]
    for i, key in enumerate(zip(*slices)):
        members = groups.get(key)
        if members is None:
            groups[key] = [start + i]
        else:
            members.append(start + i)
    return groups


def parallel_group_indices(
    key_columns: list[list],
    length: int,
    config: ParallelConfig,
    pools=None,
    tracer=None,
) -> dict[tuple, list[int]]:
    """Group rows by key tuple, preserving serial insertion order exactly.

    Each morsel groups locally (dict insertion order = local first
    occurrence); merging the morsel dicts in span order appends member
    indices in ascending order and inserts new keys in global
    first-occurrence order — identical to the serial single pass.
    """
    spans = chunk_spans(length, max(config.shards_for(length), 1))
    tasks = [(key_columns, a, b) for a, b in spans]
    if tracer is not None:
        tracer.event("kernel", kernel="group_indices", morsels=len(tasks), rows=length)
    locals_ = run_tasks(config, _group_morsel, tasks, pools=pools, tracer=tracer)
    if len(locals_) == 1:
        return locals_[0]
    merged: dict[tuple, list[int]] = {}
    for local in locals_:
        for key, indices in local.items():
            existing = merged.get(key)
            if existing is None:
                merged[key] = indices
            else:
                existing.extend(indices)
    return merged


def parallel_fold_groups(
    fold, groups: Sequence[tuple], config: ParallelConfig, pools=None, tracer=None
) -> list[Any]:
    """Apply ``fold(group)`` to every group, parallel over chunks of groups.

    ``fold`` receives one group at a time and runs the exact serial
    aggregation fold (member values in ascending row order), so float
    accumulation matches the serial engine bit for bit; only *which worker*
    folds a group changes.
    """
    n = len(groups)
    shards = config.shards_for(n)
    if shards <= 1:
        return [fold(group) for group in groups]
    spans = chunk_spans(n, shards)
    tasks = [(fold, groups, a, b) for a, b in spans]
    if tracer is not None:
        tracer.event("kernel", kernel="fold_groups", morsels=len(tasks), groups=n)
    chunks = run_tasks(config, _fold_chunk, tasks, pools=pools, tracer=tracer)
    return list(chain.from_iterable(chunks))


def _fold_chunk(fold, groups: Sequence[tuple], start: int, stop: int) -> list[Any]:
    return [fold(groups[i]) for i in range(start, stop)]


# --------------------------------------------------------------------------- #
# duplicate elimination (DISTINCT project / union)
# --------------------------------------------------------------------------- #
def _distinct_morsel(data: list[list], start: int, stop: int) -> list[tuple]:
    """(row, first global index) pairs for the morsel's locally new rows."""
    seen: set[tuple] = set()
    firsts: list[tuple] = []
    slices = [column[start:stop] for column in data]
    for i, row in enumerate(zip(*slices)):
        if row not in seen:
            seen.add(row)
            firsts.append((row, start + i))
    return firsts


def parallel_distinct_indices(
    data: list[list], length: int, config: ParallelConfig, pools=None, tracer=None
) -> list[int]:
    """Indices of first occurrences, in ascending order (serial dedup order).

    Morsels record their local first occurrences; the serial merge keeps a
    row's globally first index because spans are visited in order and local
    first indices ascend within a span.
    """
    spans = chunk_spans(length, max(config.shards_for(length), 1))
    tasks = [(data, a, b) for a, b in spans]
    if tracer is not None:
        tracer.event(
            "kernel", kernel="distinct_indices", morsels=len(tasks), rows=length
        )
    locals_ = run_tasks(config, _distinct_morsel, tasks, pools=pools, tracer=tracer)
    seen: set[tuple] = set()
    keep: list[int] = []
    for firsts in locals_:
        for row, index in firsts:
            if row not in seen:
                seen.add(row)
                keep.append(index)
    return keep
