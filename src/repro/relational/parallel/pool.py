"""Worker pools for morsel-driven execution.

The parallel operators submit *leaf* tasks (per-morsel predicate sweeps,
bucket builds, probes, group folds) to a shared pool.  Two pool kinds exist:

* **threads** (default) — zero serialization cost and shared memory, which
  hash-join probes and group merges rely on.  CPython's GIL limits the
  speedup of pure-Python sweeps, but threaded morsels are always safe.
* **processes** — CPU-bound sweeps sidestep the GIL.  Task arguments must
  pickle; when they don't (closures, live objects), the call *falls back to
  threads* without poisoning the healthy pool, so correctness never depends
  on picklability.  Only a genuinely broken pool (dead worker, no fork) is
  remembered and skipped for the rest of the manager's lifetime.

Pools are owned by a :class:`PoolManager`: created lazily, keyed by
``(role, kind, workers)``, and shared across executors — morsel tasks never
submit further pool tasks, so a single level of pooling cannot deadlock.
The batch evaluator's *inter-query* parallelism uses a pool under a separate
``role`` (inter-query tasks *do* submit morsel tasks, so the two levels must
never share one pool; see
:class:`~repro.core.evaluators.batch.BatchEvaluator`).

One process-wide default manager serves everything that does not pass an
explicit ``pools=``; a :class:`~repro.session.Session` owns a private
manager so its pools live exactly as long as the session
(``Session.close()`` shuts them down without touching anyone else's).
"""

from __future__ import annotations

import atexit
import pickle
import threading
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Iterable, Sequence

from repro.obs.trace import activate
from repro.relational.parallel.config import ParallelConfig

#: Pool role running operator morsels (leaf tasks — never submit pool work).
ROLE_MORSEL = "morsel"
#: Pool role running whole workload queries (these DO submit morsel tasks,
#: so they must never share a pool with :data:`ROLE_MORSEL`).
ROLE_INTERQUERY = "interquery"
#: Pool role running the serving front end's per-tenant request workers
#: (:mod:`repro.serving`).  A serving task drives a whole ``Session`` call —
#: which may itself fan out inter-query and morsel tasks — so this level,
#: like :data:`ROLE_INTERQUERY`, must never share a pool with the levels it
#: submits to.
ROLE_SERVING = "serving"


class PoolManager:
    """Lazily-created worker pools with an explicit lifetime.

    Thread pools are keyed by ``(role, workers)`` and process pools by
    ``workers``; nothing is started until the first task arrives, and
    :meth:`shutdown` tears down exactly the pools this manager created.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._thread_pools: dict[tuple[str, int], ThreadPoolExecutor] = {}
        self._process_pools: dict[int, ProcessPoolExecutor] = {}
        #: worker counts whose process pool is genuinely broken (a dead worker
        #: or no fork support); calls fall back to threads from then on.
        #: Mere pickling failures do NOT land here — they are per-task
        #: properties, handled per call without poisoning a healthy pool.
        self._broken_process_pools: set[int] = set()
        self._started_total = 0
        self._closed = False

    # ------------------------------------------------------------------ #
    def thread_pool(self, workers: int, role: str = ROLE_MORSEL) -> ThreadPoolExecutor:
        """The (lazily-started) thread pool for ``role`` at ``workers``."""
        key = (role, workers)
        with self._lock:
            if self._closed:
                raise RuntimeError("pool manager is closed")
            pool = self._thread_pools.get(key)
            if pool is None:
                pool = ThreadPoolExecutor(
                    max_workers=workers, thread_name_prefix=f"repro-{role}"
                )
                self._thread_pools[key] = pool
                self._started_total += 1
        return pool

    def process_pool(self, workers: int) -> ProcessPoolExecutor | None:
        """The (lazily-started) process pool, or ``None`` when unusable."""
        with self._lock:
            if self._closed:
                raise RuntimeError("pool manager is closed")
            if workers in self._broken_process_pools:
                return None
            pool = self._process_pools.get(workers)
            if pool is None:
                try:
                    pool = ProcessPoolExecutor(max_workers=workers)
                except (OSError, ValueError):  # pragma: no cover - no fork available
                    self._broken_process_pools.add(workers)
                    return None
                self._process_pools[workers] = pool
                self._started_total += 1
        return pool

    def mark_process_pool_broken(self, workers: int) -> None:
        """Remember that the ``workers``-wide process pool died."""
        with self._lock:
            self._broken_process_pools.add(workers)

    # ------------------------------------------------------------------ #
    @property
    def started_pools(self) -> int:
        """Pools this manager started over its lifetime (survives shutdown)."""
        with self._lock:
            return self._started_total

    def queue_depth(self) -> int:
        """Tasks submitted to this manager's thread pools but not yet running.

        An instantaneous gauge (the serving front end's saturation signal):
        0 means every submitted morsel/inter-query task has a worker.
        Process pools are excluded — their queues live across the process
        boundary and expose no cheap depth.
        """
        depth = 0
        with self._lock:
            pools = list(self._thread_pools.values())
        for pool in pools:
            queue = getattr(pool, "_work_queue", None)
            if queue is not None:
                depth += queue.qsize()
        return depth

    @property
    def closed(self) -> bool:
        """True once :meth:`shutdown` has run."""
        return self._closed

    def shutdown(self, wait: bool = False, reopen: bool = False) -> None:
        """Tear down every pool this manager started (idempotent).

        ``reopen=True`` reclaims the workers but leaves the manager usable —
        the next task lazily recreates its pool.  The process-wide default
        manager is reset this way (holders of the reference keep working);
        a session's private manager closes terminally.
        """
        with self._lock:
            self._closed = not reopen
            pools: list = list(self._thread_pools.values())
            pools.extend(self._process_pools.values())
            self._thread_pools.clear()
            self._process_pools.clear()
        for pool in pools:
            pool.shutdown(wait=wait, cancel_futures=True)


#: The process-wide manager used whenever no explicit ``pools=`` is given.
_DEFAULT_MANAGER = PoolManager()


def default_manager() -> PoolManager:
    """The process-wide :class:`PoolManager`."""
    return _DEFAULT_MANAGER


@atexit.register
def shutdown_pools() -> None:
    """Tear down the default manager's pools (atexit; callable from tests).

    The manager object stays the same and stays usable — pools are
    re-created lazily on the next task — so every holder of
    :func:`default_manager` (throwaway shim sessions, the bench harness)
    keeps working after a reset.
    """
    _DEFAULT_MANAGER.shutdown(reopen=True)


def run_tasks(
    config: ParallelConfig,
    fn: Callable[..., Any],
    args_list: Sequence[tuple],
    picklable: bool = False,
    pools: PoolManager | None = None,
    tracer=None,
) -> list[Any]:
    """Run ``fn(*args)`` for every args tuple, returning results in order.

    One task (or one worker) short-circuits to a serial loop.  Process pools
    are used only when the caller vouches the task is ``picklable`` *and*
    the config asks for them; a task that does not actually pickle falls
    back to the thread pool for that call (a cheap pre-flight pickle of the
    first task catches the common case — e.g. a locally defined predicate
    class — up front), a dead worker marks the pool broken for the rest of
    the manager's lifetime, and a genuine task exception propagates to the
    caller exactly as the serial and threaded paths would raise it.

    ``pools`` selects the owning :class:`PoolManager` (a session's, usually);
    the process-wide default serves callers that pass none.

    ``tracer`` (a :class:`~repro.obs.trace.Tracer`) propagates the
    submitting thread's current span into thread-pool workers, so events a
    task records nest under the operator that scheduled it; the fan-out
    itself is recorded as a ``pool`` event (kind, tasks, workers).  A live
    tracer cannot cross a process boundary, so process-pool runs record the
    fan-out on the scheduling side only.
    """
    manager = pools if pools is not None else _DEFAULT_MANAGER
    workers = config.resolved_workers()
    if workers <= 1 or len(args_list) <= 1:
        return [fn(*args) for args in args_list]
    if picklable and config.kind == "process":
        results = _try_process_pool(manager, workers, fn, args_list)
        if results is not None:
            if tracer is not None:
                tracer.event(
                    "pool", kind="process", tasks=len(args_list), workers=workers
                )
            return results
    pool = manager.thread_pool(workers)
    task = fn
    if tracer is not None:
        tracer.event("pool", kind="thread", tasks=len(args_list), workers=workers)
        parent = tracer.current()

        def task(*args):
            # Workers carry neither the ambient tracer nor the submitting
            # thread's span stack; restore both so anything the morsel
            # records lands under the scheduling operator's span.
            with activate(tracer), tracer.attach(parent):
                return fn(*args)

    futures = [pool.submit(task, *args) for args in args_list]
    return [future.result() for future in futures]


def _try_process_pool(
    manager: PoolManager,
    workers: int,
    fn: Callable[..., Any],
    args_list: Sequence[tuple],
) -> list[Any] | None:
    """Process-pool attempt; ``None`` means "use the thread pool instead"."""
    pool = manager.process_pool(workers)
    if pool is None:
        return None
    try:
        pickle.dumps((fn, args_list[0]))
    except Exception:
        return None  # the task cannot cross a process boundary; pool is fine
    try:
        futures = [pool.submit(fn, *args) for args in args_list]
        return [future.result() for future in futures]
    except BrokenProcessPool:
        manager.mark_process_pool_broken(workers)
        return None
    except (pickle.PicklingError, AttributeError):
        # A later task (or a result) failed to serialize after the pre-flight
        # passed; recompute the whole call on threads.  Any other exception
        # is a real task error and propagates.
        return None


class InflightComputations:
    """Compute-once registry for results shared between concurrent queries.

    The batch evaluator's inter-query parallelism hands every per-query
    executor the same registry: the first executor to reach a shared
    materialization *claims* its key and computes it; every other executor
    blocks on the claim's future and receives the finished relation (counted
    as a plan-cache hit).  Claims always have a running owner, and waits
    follow the strict sub-plan partial order, so no cycle of waits can form.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._futures: dict[str, Future] = {}

    def claim(self, key: str) -> tuple[Future, bool]:
        """Return ``(future, owner)``; ``owner`` is True for the first claimant."""
        with self._lock:
            future = self._futures.get(key)
            if future is not None:
                return future, False
            future = Future()
            self._futures[key] = future
            return future, True

    def resolve(self, key: str, future: Future, value: Any) -> None:
        """Publish the owner's result and retire the claim."""
        future.set_result(value)
        with self._lock:
            self._futures.pop(key, None)

    def fail(self, key: str, future: Future, error: BaseException) -> None:
        """Propagate the owner's failure to every waiter and retire the claim."""
        future.set_exception(error)
        with self._lock:
            self._futures.pop(key, None)


def map_ordered(
    pool_workers: int,
    fn: Callable[[Any], Any],
    items: Iterable[Any],
    pools: PoolManager | None = None,
) -> list[Any]:
    """Thread-pool map preserving item order (inter-query scheduling helper).

    With a ``pools`` manager the map runs on its long-lived
    :data:`ROLE_INTERQUERY` pool (distinct from the morsel pools — these
    tasks submit morsel work, sharing a pool would deadlock); without one it
    spins up an ephemeral pool for the call, as the one-shot API always did.

    Error semantics match the ephemeral pool on both paths: when one item's
    task raises, the call waits out (or cancels, if not yet started) every
    sibling task *before* re-raising — no orphan task may outlive the call,
    or a session's ``close()`` drain could shut the pools down under one.
    """
    items = list(items)
    if pool_workers <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    if pools is not None:
        pool = pools.thread_pool(pool_workers, role=ROLE_INTERQUERY)
        futures = [pool.submit(fn, item) for item in items]
        try:
            return [future.result() for future in futures]
        except BaseException:
            for future in futures:
                future.cancel()
            wait(futures)
            raise
    with ThreadPoolExecutor(max_workers=pool_workers) as pool:
        return list(pool.map(fn, items))
