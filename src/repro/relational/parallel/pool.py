"""Worker pools for morsel-driven execution.

The parallel operators submit *leaf* tasks (per-morsel predicate sweeps,
bucket builds, probes, group folds) to a shared pool.  Two pool kinds exist:

* **threads** (default) — zero serialization cost and shared memory, which
  hash-join probes and group merges rely on.  CPython's GIL limits the
  speedup of pure-Python sweeps, but threaded morsels are always safe.
* **processes** — CPU-bound sweeps sidestep the GIL.  Task arguments must
  pickle; when they don't (closures, live objects), the call *falls back to
  threads* without poisoning the healthy pool, so correctness never depends
  on picklability.  Only a genuinely broken pool (dead worker, no fork) is
  remembered and skipped for the rest of the process.

Pools are created lazily, keyed by ``(kind, workers)``, and shared across
executors — morsel tasks never submit further pool tasks, so a single level
of pooling cannot deadlock.  The batch evaluator's *inter-query* parallelism
uses a separate dedicated pool (see
:class:`~repro.core.evaluators.batch.BatchEvaluator`) for the same reason.
"""

from __future__ import annotations

import atexit
import pickle
import threading
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Iterable, Sequence

from repro.relational.parallel.config import ParallelConfig

_LOCK = threading.Lock()
_THREAD_POOLS: dict[int, ThreadPoolExecutor] = {}
_PROCESS_POOLS: dict[int, ProcessPoolExecutor] = {}
#: worker counts whose process pool is genuinely broken (a dead worker or no
#: fork support); calls fall back to threads for the rest of the process.
#: Mere pickling failures do NOT land here — they are per-task properties,
#: handled per call without poisoning a healthy pool.
_BROKEN_PROCESS_POOLS: set[int] = set()


def _thread_pool(workers: int) -> ThreadPoolExecutor:
    with _LOCK:
        pool = _THREAD_POOLS.get(workers)
        if pool is None:
            pool = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-parallel"
            )
            _THREAD_POOLS[workers] = pool
    return pool


def _process_pool(workers: int) -> ProcessPoolExecutor | None:
    with _LOCK:
        if workers in _BROKEN_PROCESS_POOLS:
            return None
        pool = _PROCESS_POOLS.get(workers)
        if pool is None:
            try:
                pool = ProcessPoolExecutor(max_workers=workers)
            except (OSError, ValueError):  # pragma: no cover - no fork available
                _BROKEN_PROCESS_POOLS.add(workers)
                return None
            _PROCESS_POOLS[workers] = pool
    return pool


@atexit.register
def shutdown_pools() -> None:
    """Tear down every shared pool (registered atexit; callable from tests)."""
    with _LOCK:
        pools = list(_THREAD_POOLS.values()) + list(_PROCESS_POOLS.values())
        _THREAD_POOLS.clear()
        _PROCESS_POOLS.clear()
    for pool in pools:
        pool.shutdown(wait=False, cancel_futures=True)


def run_tasks(
    config: ParallelConfig,
    fn: Callable[..., Any],
    args_list: Sequence[tuple],
    picklable: bool = False,
) -> list[Any]:
    """Run ``fn(*args)`` for every args tuple, returning results in order.

    One task (or one worker) short-circuits to a serial loop.  Process pools
    are used only when the caller vouches the task is ``picklable`` *and*
    the config asks for them; a task that does not actually pickle falls
    back to the thread pool for that call (a cheap pre-flight pickle of the
    first task catches the common case — e.g. a locally defined predicate
    class — up front), a dead worker marks the pool broken for the rest of
    the process, and a genuine task exception propagates to the caller
    exactly as the serial and threaded paths would raise it.
    """
    workers = config.resolved_workers()
    if workers <= 1 or len(args_list) <= 1:
        return [fn(*args) for args in args_list]
    if picklable and config.kind == "process":
        results = _try_process_pool(workers, fn, args_list)
        if results is not None:
            return results
    pool = _thread_pool(workers)
    futures = [pool.submit(fn, *args) for args in args_list]
    return [future.result() for future in futures]


def _try_process_pool(
    workers: int, fn: Callable[..., Any], args_list: Sequence[tuple]
) -> list[Any] | None:
    """Process-pool attempt; ``None`` means "use the thread pool instead"."""
    pool = _process_pool(workers)
    if pool is None:
        return None
    try:
        pickle.dumps((fn, args_list[0]))
    except Exception:
        return None  # the task cannot cross a process boundary; pool is fine
    try:
        futures = [pool.submit(fn, *args) for args in args_list]
        return [future.result() for future in futures]
    except BrokenProcessPool:
        with _LOCK:
            _BROKEN_PROCESS_POOLS.add(workers)
        return None
    except (pickle.PicklingError, AttributeError):
        # A later task (or a result) failed to serialize after the pre-flight
        # passed; recompute the whole call on threads.  Any other exception
        # is a real task error and propagates.
        return None


class InflightComputations:
    """Compute-once registry for results shared between concurrent queries.

    The batch evaluator's inter-query parallelism hands every per-query
    executor the same registry: the first executor to reach a shared
    materialization *claims* its key and computes it; every other executor
    blocks on the claim's future and receives the finished relation (counted
    as a plan-cache hit).  Claims always have a running owner, and waits
    follow the strict sub-plan partial order, so no cycle of waits can form.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._futures: dict[str, Future] = {}

    def claim(self, key: str) -> tuple[Future, bool]:
        """Return ``(future, owner)``; ``owner`` is True for the first claimant."""
        with self._lock:
            future = self._futures.get(key)
            if future is not None:
                return future, False
            future = Future()
            self._futures[key] = future
            return future, True

    def resolve(self, key: str, future: Future, value: Any) -> None:
        """Publish the owner's result and retire the claim."""
        future.set_result(value)
        with self._lock:
            self._futures.pop(key, None)

    def fail(self, key: str, future: Future, error: BaseException) -> None:
        """Propagate the owner's failure to every waiter and retire the claim."""
        future.set_exception(error)
        with self._lock:
            self._futures.pop(key, None)


def map_ordered(
    pool_workers: int, fn: Callable[[Any], Any], items: Iterable[Any]
) -> list[Any]:
    """Thread-pool map preserving item order (inter-query scheduling helper)."""
    items = list(items)
    if pool_workers <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    with ThreadPoolExecutor(max_workers=pool_workers) as pool:
        return list(pool.map(fn, items))
