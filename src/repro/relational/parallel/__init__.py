"""Parallel sharded execution engine (``engine="parallel"``).

The package adds intra-operator parallelism to the columnar batch engine:

* :mod:`~repro.relational.parallel.partition` — horizontal sharding of
  relations/batches (contiguous morsels, round-robin, hash co-partitioning)
  with a version-keyed shard cache on base relations;
* :mod:`~repro.relational.parallel.pool` — shared thread/process worker
  pools (threaded fallback when pickling loses) and the compute-once
  registry behind inter-query sharing;
* :mod:`~repro.relational.parallel.operators` — morsel-driven select /
  hash-join / aggregate / distinct kernels that are byte-identical to the
  serial columnar operators by construction;
* :mod:`~repro.relational.parallel.config` — the :class:`ParallelConfig`
  knobs and the process-wide default the executor picks up.

The engine switch itself lives on
:class:`~repro.relational.executor.Executor`: ``engine="parallel"`` runs the
columnar engine with these kernels wherever an operator's input is large
enough (``min_partition_rows``), and falls back **per node** to the serial
columnar code below that bound — answers are byte-identical in every mix,
which the differential harness asserts.
"""

from repro.relational.parallel.config import (
    ParallelConfig,
    available_cpus,
    configure,
    default_config,
    set_default_config,
)
from repro.relational.parallel.operators import (
    parallel_distinct_indices,
    parallel_fold_groups,
    parallel_group_indices,
    parallel_join_indices,
    parallel_predicate_mask,
)
from repro.relational.parallel.partition import (
    PARTITION_MODES,
    ShardSet,
    cached_chunk_columns,
    chunk_spans,
    hash_partition_indices,
    round_robin_indices,
    shard_batch,
    shard_relation,
)
from repro.relational.parallel.pool import (
    ROLE_INTERQUERY,
    ROLE_MORSEL,
    ROLE_SERVING,
    InflightComputations,
    PoolManager,
    default_manager,
    run_tasks,
    shutdown_pools,
)

__all__ = [
    "ParallelConfig",
    "available_cpus",
    "configure",
    "default_config",
    "set_default_config",
    "parallel_distinct_indices",
    "parallel_fold_groups",
    "parallel_group_indices",
    "parallel_join_indices",
    "parallel_predicate_mask",
    "PARTITION_MODES",
    "ShardSet",
    "cached_chunk_columns",
    "chunk_spans",
    "hash_partition_indices",
    "round_robin_indices",
    "shard_batch",
    "shard_relation",
    "InflightComputations",
    "PoolManager",
    "ROLE_INTERQUERY",
    "ROLE_MORSEL",
    "ROLE_SERVING",
    "default_manager",
    "run_tasks",
    "shutdown_pools",
]
