"""Horizontal sharding of relations and column batches.

Three partitioners cut an input of ``n`` rows into ``k`` shards:

* :func:`chunk_spans` — contiguous morsels (the parallel operators' default:
  concatenating per-morsel results in span order reproduces the serial row
  order exactly, which is what keeps answers byte-identical);
* :func:`round_robin_indices` — strided assignment, perfectly balanced even
  on sorted inputs (row ``i`` goes to shard ``i % k``);
* :func:`hash_partition_indices` — co-partitioning by a key column, so equal
  keys land in the same shard (the classic partitioned-join layout).

:func:`shard_relation` materialises shards of a base relation through a
**version-keyed shard cache** stored on the relation itself, alongside the
existing column-major cache: repeated parallel scans of the same (unchanged)
relation reuse the shard lists, relabelled views (``prefixed``/``rename``)
share them because the holder travels with the data, and any mutation bumps
the version token which invalidates the cached shards transparently.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.relational.columnar import ColumnBatch
from repro.relational.relation import Relation

#: The partitioning modes :func:`shard_batch` understands.
PARTITION_MODES = ("chunk", "round-robin", "hash")


# --------------------------------------------------------------------------- #
# index-level partitioners
# --------------------------------------------------------------------------- #
def chunk_spans(n: int, shards: int) -> list[tuple[int, int]]:
    """Split ``range(n)`` into ``shards`` contiguous, balanced ``(start, stop)`` spans.

    Sizes differ by at most one row; empty spans are never produced (fewer
    spans are returned when ``n < shards``).
    """
    if shards <= 0:
        raise ValueError("shards must be positive")
    shards = min(shards, n) or (1 if n == 0 else shards)
    if n == 0:
        return []
    base, extra = divmod(n, shards)
    spans = []
    start = 0
    for i in range(shards):
        stop = start + base + (1 if i < extra else 0)
        spans.append((start, stop))
        start = stop
    return spans


def round_robin_indices(n: int, shards: int) -> list[list[int]]:
    """Strided row-index lists: row ``i`` lands in shard ``i % shards``."""
    if shards <= 0:
        raise ValueError("shards must be positive")
    return [list(range(i, n, shards)) for i in range(min(shards, max(n, 1)))]


def hash_partition_indices(values: Sequence, shards: int) -> list[list[int]]:
    """Row-index lists co-partitioned by ``hash(value) % shards``.

    Equal key values always land in the same shard (the property a
    partitioned hash join needs).  Unhashable values raise ``TypeError``
    like any dict insertion would.
    """
    if shards <= 0:
        raise ValueError("shards must be positive")
    partitions: list[list[int]] = [[] for _ in range(shards)]
    for i, value in enumerate(values):
        partitions[hash(value) % shards].append(i)
    return partitions


# --------------------------------------------------------------------------- #
# shard sets
# --------------------------------------------------------------------------- #
@dataclass
class ShardSet:
    """The shards of one batch plus the bookkeeping to restore row order."""

    #: partitioning mode (one of :data:`PARTITION_MODES`)
    mode: str
    #: the shards, in partition order
    shards: list[ColumnBatch]
    #: original row indices per shard (``None`` entries for contiguous spans,
    #: whose indices are implied by :attr:`spans`)
    indices: list[list[int] | None]
    #: ``(start, stop)`` spans per shard for ``chunk`` mode, else ``None``
    spans: list[tuple[int, int]] | None = None

    def __len__(self) -> int:
        return len(self.shards)

    @property
    def total_rows(self) -> int:
        """Rows across all shards (equals the source batch's length)."""
        return sum(len(shard) for shard in self.shards)

    def row_indices(self) -> list[list[int]]:
        """Original row indices per shard (computed for chunk spans)."""
        if self.spans is not None:
            return [list(range(start, stop)) for start, stop in self.spans]
        return [list(indices) for indices in self.indices]

    def reassemble(self) -> ColumnBatch:
        """Reconstruct a batch in the original row order (test helper)."""
        if not self.shards:
            return ColumnBatch((), [], length=0)
        first = self.shards[0]
        n = self.total_rows
        data: list[list] = [[None] * n for _ in first.columns]
        for shard, indices in zip(self.shards, self.row_indices()):
            for column, out in zip(shard.data, data):
                for local, original in enumerate(indices):
                    out[original] = column[local]
        return ColumnBatch(first.columns, data, name=first.name, length=n)


# --------------------------------------------------------------------------- #
# sharding (with the version-keyed cache for base relations)
# --------------------------------------------------------------------------- #
def _shard_data(
    data: Sequence[list], n: int, shards: int, mode: str, key_position: int | None
) -> tuple[list[list[list]], list[list[int] | None], list[tuple[int, int]] | None]:
    """Partition column-major ``data`` into per-shard column lists."""
    if mode == "chunk":
        spans = chunk_spans(n, shards)
        shard_data = [[column[a:b] for column in data] for a, b in spans]
        return shard_data, [None] * len(spans), spans
    if mode == "round-robin":
        index_lists = round_robin_indices(n, shards)
    elif mode == "hash":
        if key_position is None:
            raise ValueError("hash partitioning needs a key column position")
        index_lists = hash_partition_indices(data[key_position], shards)
    else:
        raise ValueError(f"unknown partition mode {mode!r}; available: {PARTITION_MODES}")
    shard_data = [
        [list(map(column.__getitem__, indices)) for column in data]
        for indices in index_lists
    ]
    return shard_data, [list(indices) for indices in index_lists], None


def shard_batch(
    batch: ColumnBatch,
    shards: int,
    mode: str = "chunk",
    key: str | int | None = None,
) -> ShardSet:
    """Cut ``batch`` into ``shards`` horizontal shards.

    ``key`` (a column label or position) selects the partitioning column for
    ``mode="hash"``.  When the batch wraps an unmutated base
    :class:`Relation` (``ColumnBatch.from_relation``), the shard lists come
    from the relation's version-keyed shard cache — see
    :func:`shard_relation`.
    """
    key_position = _resolve_key(batch, key) if mode == "hash" else None
    source = batch._source
    if source is not None:
        shard_data, indices, spans = _cached_shard_data(
            source, shards, mode, key_position
        )
    else:
        shard_data, indices, spans = _shard_data(
            batch.data, len(batch), shards, mode, key_position
        )
    batches = [
        ColumnBatch(batch.columns, data, name=batch.name, length=_shard_len(data, span))
        for data, span in zip(shard_data, spans or [None] * len(shard_data))
    ]
    return ShardSet(mode=mode, shards=batches, indices=indices, spans=spans)


def shard_relation(
    relation: Relation,
    shards: int,
    mode: str = "chunk",
    key: str | int | None = None,
) -> ShardSet:
    """Shard a base relation through its version-keyed shard cache.

    The cache holder lives on the relation (shared with ``prefixed``/
    ``rename`` views, exactly like the column-major cache), and entries are
    keyed on ``(version, shards, mode, key_position)``: a relabelled view of
    unchanged data reuses the shard lists, while ``set_relation`` (a new
    relation object) or an in-place ``append`` (a new version token) makes
    the cached shards unreachable or stale.
    """
    return shard_batch(ColumnBatch.from_relation(relation), shards, mode=mode, key=key)


def _shard_len(data: list[list], span: tuple[int, int] | None) -> int:
    if span is not None:
        return span[1] - span[0]
    return len(data[0]) if data else 0


def _resolve_key(batch: ColumnBatch, key: str | int | None) -> int:
    if key is None:
        raise ValueError("hash partitioning needs a key column (label or position)")
    if isinstance(key, int):
        if not 0 <= key < len(batch.columns):
            raise ValueError(f"key position {key} out of range for {list(batch.columns)}")
        return key
    return batch.resolve(key)


def cached_chunk_columns(
    relation: Relation, shards: int, positions: Sequence[int]
) -> tuple[list[list[list]], list[tuple[int, int]]]:
    """Contiguous-morsel slices of selected columns, version-cached per column.

    This is the entry point the parallel operators use to shard
    base-relation inputs: repeated parallel sweeps over the same unchanged
    relation (the common case in a workload — every source query scans the
    same base relations, and o-sharing re-feeds shared intermediates as
    materialized leaves) slice each *referenced* column once per shard
    count.  Caching per column keeps a wide relation whose predicate touches
    one attribute from paying slices for the other columns.

    Returns ``(shard_data, spans)`` where ``shard_data[i]`` holds the
    requested columns (in ``positions`` order) of morsel ``i``.

    The cache holds slices for **one shard count at a time** (the last one
    used): a config change rebuilds it rather than accumulating a redundant
    full copy of every hot column per distinct worker count.
    """
    holder = relation._shard_cache
    cached = holder[0]
    if cached is None or cached[0] != relation.version:
        entries: dict = {}
        holder[0] = (relation.version, entries)
    else:
        entries = cached[1]
    chunked = entries.get("chunk-columns")
    if chunked is None or chunked["shards"] != shards:
        chunked = {
            "shards": shards,
            "spans": chunk_spans(len(relation), shards),
            "columns": {},
        }
        entries["chunk-columns"] = chunked
    spans = chunked["spans"]
    column_cache = chunked["columns"]
    data = relation.column_data()
    sliced = []
    for position in positions:
        column_shards = column_cache.get(position)
        if column_shards is None:
            column = data[position]
            column_shards = [column[a:b] for a, b in spans]
            column_cache[position] = column_shards
        sliced.append(column_shards)
    shard_data = [
        [column_shards[i] for column_shards in sliced] for i in range(len(spans))
    ]
    return shard_data, spans


def patch_shard_entries(entries: dict, delta) -> dict | None:
    """Shard-cache ``entries`` with an append ``delta`` applied, or ``None``.

    Only contiguous *chunk* layouts are monotone under appends — the new
    rows simply extend the last span, and span-order reassembly still
    reproduces the serial row order exactly (byte-identity does not pin the
    span boundaries themselves).  Round-robin and hash layouts change the
    assignment of nothing but are cheaper to rebuild than to prove, so they
    are dropped.  Every patched container is a brand-new object: the old
    entries may still be aliased by in-flight shard batches.
    """
    if not delta.is_append:
        return None
    appended = delta.rows
    grown = len(appended)
    patched: dict = {}
    for key, entry in entries.items():
        if key == "chunk-columns":
            spans = entry["spans"]
            if not spans:
                continue  # relation was empty; rebuild from scratch
            new_spans = list(spans)
            start, stop = new_spans[-1]
            new_spans[-1] = (start, stop + grown)
            new_columns = {}
            for position, slices in entry["columns"].items():
                tail = slices[-1] + [row[position] for row in appended]
                new_columns[position] = list(slices[:-1]) + [tail]
            patched[key] = {
                "shards": entry["shards"],
                "spans": new_spans,
                "columns": new_columns,
            }
        elif isinstance(key, tuple) and key[1] == "chunk":
            shard_data, _indices, spans = entry
            if not spans:
                continue
            new_spans = list(spans)
            start, stop = new_spans[-1]
            new_spans[-1] = (start, stop + grown)
            last = [
                column + [row[i] for row in appended]
                for i, column in enumerate(shard_data[-1])
            ]
            patched[key] = (
                list(shard_data[:-1]) + [last],
                [None] * len(new_spans),
                new_spans,
            )
        # round-robin / hash entries are dropped and rebuilt lazily.
    return patched


def _cached_shard_data(
    relation: Relation, shards: int, mode: str, key_position: int | None
):
    """Shard ``relation``'s column data, memoised on its version token."""
    holder = relation._shard_cache
    cached = holder[0]
    if cached is None or cached[0] != relation.version:
        entries: dict = {}
        holder[0] = (relation.version, entries)
    else:
        entries = cached[1]
    cache_key = (shards, mode, key_position)
    entry = entries.get(cache_key)
    if entry is None:
        entry = _shard_data(
            relation.column_data(), len(relation), shards, mode, key_position
        )
        entries[cache_key] = entry
    return entry
