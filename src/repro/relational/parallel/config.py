"""Configuration of the parallel sharded execution engine.

A :class:`ParallelConfig` tells the executor *how much* parallelism to use
(worker count), *what kind* (threads or processes) and *when* it is worth it
(the minimum shard size below which an operator falls back to the serial
columnar implementation).  The module keeps one process-wide default that
:class:`~repro.relational.executor.Executor` picks up whenever
``engine="parallel"`` is requested without an explicit config; tests and
benchmarks override it with :func:`configure`.

Environment variables provide deployment-time overrides without touching
code: ``REPRO_PARALLEL_WORKERS``, ``REPRO_PARALLEL_KIND`` (``thread`` |
``process``) and ``REPRO_PARALLEL_MIN_ROWS``.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Iterator

#: The worker-pool kinds the engine knows how to drive.
POOL_KINDS = ("thread", "process")


def available_cpus() -> int:
    """Number of CPUs usable by this process (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


@dataclass(frozen=True)
class ParallelConfig:
    """Tuning knobs of the parallel engine.

    Attributes
    ----------
    workers:
        Worker count; ``0`` (the default) resolves to
        ``REPRO_PARALLEL_WORKERS`` or the number of available CPUs.
    kind:
        ``"thread"`` (default) runs morsels on a shared thread pool —
        zero serialization cost, safe everywhere.  ``"process"`` ships
        CPU-bound predicate sweeps to a process pool (sidestepping the GIL)
        and falls back to threads per-task when an argument does not pickle.
    min_partition_rows:
        Smallest shard worth dispatching; an operator whose input is
        shorter than two shards of this size runs the serial columnar code.
    """

    workers: int = 0
    kind: str = "thread"
    min_partition_rows: int = 2048

    def __post_init__(self) -> None:
        if self.kind not in POOL_KINDS:
            raise ValueError(f"unknown pool kind {self.kind!r}; available: {POOL_KINDS}")
        if self.workers < 0:
            raise ValueError("workers must be >= 0 (0 = autodetect)")
        if self.min_partition_rows < 0:
            raise ValueError("min_partition_rows must be >= 0")

    # ------------------------------------------------------------------ #
    def resolved_workers(self) -> int:
        """The effective worker count (explicit > env > available CPUs)."""
        if self.workers:
            return self.workers
        env = os.environ.get("REPRO_PARALLEL_WORKERS")
        if env:
            try:
                workers = int(env)
                if workers > 0:
                    return workers
            except ValueError:
                pass
        return available_cpus()

    def shards_for(self, rows: int) -> int:
        """How many shards an input of ``rows`` rows should be cut into.

        At least ``min_partition_rows`` rows per shard (so tiny inputs
        return 1 — the caller's signal to stay serial), at most the worker
        count.  ``min_partition_rows=0`` always shards to the worker count
        (useful in tests that must exercise the parallel paths on small
        data).
        """
        workers = self.resolved_workers()
        if workers <= 1 or rows == 0:
            return 1
        if not self.min_partition_rows:
            return min(workers, max(rows, 1))
        return max(1, min(workers, rows // self.min_partition_rows))


def _config_from_env() -> ParallelConfig:
    kind = os.environ.get("REPRO_PARALLEL_KIND", "thread")
    if kind not in POOL_KINDS:
        kind = "thread"
    try:
        min_rows = int(os.environ.get("REPRO_PARALLEL_MIN_ROWS", "2048"))
    except ValueError:
        min_rows = 2048
    return ParallelConfig(kind=kind, min_partition_rows=max(0, min_rows))


_DEFAULT: ParallelConfig = _config_from_env()


def default_config() -> ParallelConfig:
    """The process-wide config used when ``engine="parallel"`` has no explicit one."""
    return _DEFAULT


def set_default_config(config: ParallelConfig) -> ParallelConfig:
    """Replace the process-wide default; returns the previous one."""
    global _DEFAULT
    previous = _DEFAULT
    _DEFAULT = config
    return previous


@contextmanager
def configure(config: ParallelConfig | None = None, **changes) -> Iterator[ParallelConfig]:
    """Temporarily override the process-wide default config.

    Either pass a full :class:`ParallelConfig` or keyword field changes
    applied on top of the current default::

        with configure(workers=4, min_partition_rows=0):
            evaluate(..., engine="parallel")
    """
    new = config if config is not None else replace(_DEFAULT, **changes)
    previous = set_default_config(new)
    try:
        yield new
    finally:
        set_default_config(previous)
