"""CSV persistence for relations and databases.

The benchmark harness regenerates data deterministically, so persistence is
not required for the reproduction itself — it exists so that downstream users
can load their own source instances (the library-adoption use case) and so
that examples can dump inspectable artefacts.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable

from repro.relational.database import Database
from repro.relational.relation import Relation
from repro.relational.schema import DatabaseSchema
from repro.relational.types import DataType


def write_relation(relation: Relation, path: str | Path) -> None:
    """Write ``relation`` to ``path`` as a header-first CSV file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(relation.columns)
        writer.writerows(relation.rows)


def read_relation(path: str | Path, name: str = "") -> Relation:
    """Read a relation previously written by :func:`write_relation`.

    Values are read back as strings; use :func:`read_typed_relation` when the
    schema is known and numeric columns must be restored.
    """
    path = Path(path)
    with path.open("r", newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        try:
            columns = next(reader)
        except StopIteration:
            raise ValueError(f"CSV file {path} is empty") from None
        rows = [tuple(row) for row in reader]
    return Relation(columns, rows, name=name or path.stem)


def read_typed_relation(
    path: str | Path,
    types: Iterable[DataType],
    name: str = "",
) -> Relation:
    """Read a relation and coerce each column to the given data types."""
    raw = read_relation(path, name=name)
    types = list(types)
    if len(types) != len(raw.columns):
        raise ValueError(
            f"expected {len(raw.columns)} column types, got {len(types)}"
        )
    rows = [
        tuple(data_type.coerce(value) if value != "" else None for data_type, value in zip(types, row))
        for row in raw.rows
    ]
    return Relation(raw.columns, rows, name=raw.name)


def write_database(database: Database, directory: str | Path) -> list[Path]:
    """Write every loaded relation of ``database`` into ``directory`` (one CSV each)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written = []
    for name, relation in database:
        target = directory / f"{name}.csv"
        write_relation(relation, target)
        written.append(target)
    return written


def read_database(schema: DatabaseSchema, directory: str | Path) -> Database:
    """Load a database from a directory of per-relation CSV files.

    Only relations present both in the schema and on disk are loaded; column
    values are coerced according to the schema's declared data types.
    """
    directory = Path(directory)
    database = Database(schema)
    for relation_schema in schema:
        path = directory / f"{relation_schema.name}.csv"
        if not path.exists():
            continue
        types = [attribute.data_type for attribute in relation_schema]
        relation = read_typed_relation(path, types, name=relation_schema.name)
        database.set_relation(relation_schema.name, relation)
    return database
