"""Plan executor.

The executor evaluates a :class:`~repro.relational.algebra.PlanNode` tree
against a :class:`~repro.relational.database.Database` and returns a
:class:`~repro.relational.relation.Relation`.  It is deliberately simple —
recursive, materialising — because every algorithm in the paper manipulates
*which* operators get executed, not *how* an individual operator is executed.

Two physical optimisations are implemented because the figures depend on
realistic relative costs:

* equality selections directly above a base-relation scan use a hash index;
* equi-joins use a hash join; all other joins and Cartesian products are
  nested loops.

Each executed operator is recorded in an
:class:`~repro.relational.stats.ExecutionStats` so that evaluators can report
the number of source operators they ran (Table IV of the paper).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any

from repro.relational.algebra import (
    Aggregate,
    Join,
    Materialized,
    PlanNode,
    Product,
    Project,
    Scan,
    Select,
    Union,
)
from repro.relational.database import Database
from repro.relational.expressions import ColumnRef, Literal
from repro.relational.plancache import MaterializationPolicy, MaterializeAll, PlanCache
from repro.relational.predicates import Comparison, Predicate, conjunction
from repro.relational.relation import Relation
from repro.relational.stats import ExecutionStats
from repro.relational.types import _try_parse_number


class Executor:
    """Evaluates relational-algebra plans against a database.

    When a :class:`~repro.relational.plancache.PlanCache` is supplied, the
    executor consults a materialization policy at every node: nodes the
    policy selects are answered from the cache when possible (recording a
    plan-cache hit and the operators saved in :class:`ExecutionStats`) and
    stored after execution otherwise.  This is how e-MQO's global plan and
    the batch serving API share work across source queries; without a cache
    the executor behaves exactly as before.
    """

    def __init__(
        self,
        database: Database,
        stats: ExecutionStats | None = None,
        cache: PlanCache | None = None,
        policy: MaterializationPolicy | None = None,
    ):
        self.database = database
        self.stats = stats if stats is not None else ExecutionStats()
        self.cache = cache
        if policy is None and cache is not None:
            policy = MaterializeAll()
        self.policy = policy

    # ------------------------------------------------------------------ #
    def execute(self, plan: PlanNode) -> Relation:
        """Evaluate ``plan`` and return its result relation."""
        result = self._evaluate(plan)
        return result

    def execute_query(self, plan: PlanNode) -> Relation:
        """Evaluate a complete source query (counts one source query in stats)."""
        self.stats.count_source_query()
        return self.execute(plan)

    # ------------------------------------------------------------------ #
    def _evaluate(self, node: PlanNode) -> Relation:
        if isinstance(node, Materialized):
            return node.relation
        if self.cache is None or self.policy is None:
            return self._dispatch(node)
        key = self.policy.cache_key(node)
        if key is None:
            return self._dispatch(node)
        entry = self.cache.get(key, self.database)
        if entry is not None:
            self.stats.count_cache_hit(entry.operator_count)
            return entry.relation
        self.stats.count_cache_miss()
        result = self._dispatch(node)
        self.cache.put(key, node, result, self.database)
        return result

    def _dispatch(self, node: PlanNode) -> Relation:
        if isinstance(node, Scan):
            return self._evaluate_scan(node)
        if isinstance(node, Select):
            return self._evaluate_select(node)
        if isinstance(node, Project):
            return self._evaluate_project(node)
        if isinstance(node, Product):
            return self._evaluate_product(node)
        if isinstance(node, Join):
            return self._evaluate_join(node)
        if isinstance(node, Union):
            return self._evaluate_union(node)
        if isinstance(node, Aggregate):
            return self._evaluate_aggregate(node)
        raise TypeError(f"cannot execute plan node of type {type(node).__name__}")

    # -- leaves ---------------------------------------------------------- #
    def _evaluate_scan(self, node: Scan) -> Relation:
        relation = self.database.scan(node.relation, node.alias)
        self.stats.count_operator("Scan", rows_in=len(relation), rows_out=len(relation))
        return relation

    # -- selection -------------------------------------------------------- #
    def _evaluate_select(self, node: Select) -> Relation:
        indexed = self._try_indexed_select(node)
        if indexed is not None:
            return indexed
        child = self._evaluate(node.child)
        predicate = node.predicate
        rows = [row for row in child.rows if predicate.evaluate(child, row)]
        self.stats.count_operator("Select", rows_in=len(child), rows_out=len(rows))
        return Relation(child.columns, rows, name=child.name)

    def _try_indexed_select(self, node: Select) -> Relation | None:
        """Fast path: single equality comparison over a base-relation scan."""
        if not isinstance(node.child, Scan):
            return None
        predicate = node.predicate
        if not isinstance(predicate, Comparison) or predicate.op != "=":
            return None
        if not (isinstance(predicate.left, ColumnRef) and isinstance(predicate.right, Literal)):
            return None
        scan = node.child
        try:
            base = self.database.relation(scan.relation)
        except KeyError:
            return None
        ref = predicate.left
        if ref.qualifier is not None and ref.qualifier != scan.label:
            return None
        try:
            position = base.resolve(ref.name)
        except KeyError:
            return None
        attribute = base.columns[position].split(".", 1)[-1]
        index = self.database.index(scan.relation, attribute)
        rows = self._index_lookup(index, predicate.right.value)
        if scan.alias is None or scan.alias == base.name:
            columns, name = base.columns, base.name
        else:
            columns = [f"{scan.alias}.{label.split('.', 1)[-1]}" for label in base.columns]
            name = scan.alias
        # The scan itself is implicit in an index lookup; record both operators
        # so that operator counts stay comparable with the non-indexed path.
        # The selection's input cardinality is the base relation it logically
        # filters, not the post-filter row count.
        self.stats.count_operator("Scan", rows_in=0, rows_out=0)
        self.stats.count_operator("Select", rows_in=len(base), rows_out=len(rows))
        return Relation(columns, rows, name=name)

    @staticmethod
    def _index_lookup(index: Any, value: Any) -> list[tuple]:
        """Index lookup tolerant of int/str literal representation differences."""
        rows = index.lookup_rows(value)
        if rows:
            return rows
        if isinstance(value, str):
            parsed = _try_parse_number(value)
            if parsed is not None:
                rows = index.lookup_rows(parsed)
                if rows:
                    return rows
        elif isinstance(value, (int, float)):
            rows = index.lookup_rows(str(value))
            if rows:
                return rows
            if isinstance(value, int):
                rows = index.lookup_rows(float(value))
        return rows

    # -- projection -------------------------------------------------------- #
    def _evaluate_project(self, node: Project) -> Relation:
        child = self._evaluate(node.child)
        positions = [child.resolve(ref.name, ref.qualifier) for ref in node.columns]
        labels = self._unique_labels([child.columns[i] for i in positions])
        rows = [tuple(row[i] for i in positions) for row in child.rows]
        if node.distinct:
            seen: set[tuple] = set()
            unique_rows = []
            for row in rows:
                if row not in seen:
                    seen.add(row)
                    unique_rows.append(row)
            rows = unique_rows
        self.stats.count_operator("Project", rows_in=len(child), rows_out=len(rows))
        return Relation(labels, rows, name=child.name)

    @staticmethod
    def _unique_labels(labels: list[str]) -> list[str]:
        """Deduplicate output labels (a projection may repeat a column)."""
        seen: dict[str, int] = defaultdict(int)
        unique = []
        for label in labels:
            seen[label] += 1
            unique.append(label if seen[label] == 1 else f"{label}#{seen[label]}")
        return unique

    # -- product / join ---------------------------------------------------- #
    def _evaluate_product(self, node: Product) -> Relation:
        left = self._evaluate(node.left)
        right = self._evaluate(node.right)
        columns = self._combine_columns(left, right)
        rows = [lrow + rrow for lrow in left.rows for rrow in right.rows]
        self.stats.count_operator(
            "Product", rows_in=len(left) + len(right), rows_out=len(rows)
        )
        return Relation(columns, rows)

    def _evaluate_join(self, node: Join) -> Relation:
        left = self._evaluate(node.left)
        right = self._evaluate(node.right)
        columns = self._combine_columns(left, right)
        combined = Relation(columns, [])
        equi = self._find_equi_condition(node.predicate, left, right)
        if equi is not None:
            left_pos, right_pos = equi
            buckets: dict[Any, list[tuple]] = defaultdict(list)
            for rrow in right.rows:
                buckets[rrow[right_pos]].append(rrow)
            rows = []
            residual = node.predicate
            for lrow in left.rows:
                for rrow in buckets.get(lrow[left_pos], ()):
                    candidate = lrow + rrow
                    if residual.evaluate(combined, candidate):
                        rows.append(candidate)
        else:
            rows = [
                lrow + rrow
                for lrow in left.rows
                for rrow in right.rows
                if node.predicate.evaluate(combined, lrow + rrow)
            ]
        self.stats.count_operator("Join", rows_in=len(left) + len(right), rows_out=len(rows))
        return Relation(columns, rows)

    def _evaluate_union(self, node: Union) -> Relation:
        left = self._evaluate(node.left)
        right = self._evaluate(node.right)
        if len(left.columns) != len(right.columns):
            raise ValueError(
                f"UNION requires inputs of equal arity, got {len(left.columns)} "
                f"and {len(right.columns)} columns"
            )
        rows = list(left.rows) + list(right.rows)
        if node.distinct:
            seen: set[tuple] = set()
            unique_rows = []
            for row in rows:
                if row not in seen:
                    seen.add(row)
                    unique_rows.append(row)
            rows = unique_rows
        self.stats.count_operator("Union", rows_in=len(left) + len(right), rows_out=len(rows))
        return Relation(left.columns, rows, name=left.name)

    @staticmethod
    def _combine_columns(left: Relation, right: Relation) -> list[str]:
        """Concatenate column labels, suffixing the right side on collisions."""
        columns = list(left.columns)
        taken = set(columns)
        for label in right.columns:
            candidate = label
            counter = 2
            while candidate in taken:
                candidate = f"{label}#{counter}"
                counter += 1
            taken.add(candidate)
            columns.append(candidate)
        return columns

    def _find_equi_condition(
        self, predicate: Predicate, left: Relation, right: Relation
    ) -> tuple[int, int] | None:
        """Locate a ``left_col = right_col`` conjunct usable for a hash join."""
        for conjunct in predicate.conjuncts():
            if not isinstance(conjunct, Comparison) or not conjunct.is_equi_column:
                continue
            first, second = conjunct.left, conjunct.right
            sides = self._resolve_sides(first, second, left, right)
            if sides is not None:
                return sides
        return None

    @staticmethod
    def _resolve_sides(
        first: ColumnRef, second: ColumnRef, left: Relation, right: Relation
    ) -> tuple[int, int] | None:
        def resolve(relation: Relation, ref: ColumnRef) -> int | None:
            try:
                return relation.resolve(ref.name, ref.qualifier)
            except KeyError:
                return None

        left_pos, right_pos = resolve(left, first), resolve(right, second)
        if left_pos is not None and right_pos is not None:
            return left_pos, right_pos
        left_pos, right_pos = resolve(left, second), resolve(right, first)
        if left_pos is not None and right_pos is not None:
            return left_pos, right_pos
        return None

    # -- aggregation -------------------------------------------------------- #
    def _evaluate_aggregate(self, node: Aggregate) -> Relation:
        child = self._evaluate(node.child)
        argument_label = str(node.argument) if node.argument is not None else "*"
        output_label = f"{node.function}({argument_label})"

        if not node.group_by:
            value = self._aggregate_rows(node, child, child.rows)
            rows = [(value,)]
            self.stats.count_operator("Aggregate", rows_in=len(child), rows_out=1)
            return Relation([output_label], rows)

        group_positions = [child.resolve(ref.name, ref.qualifier) for ref in node.group_by]
        group_labels = [child.columns[i] for i in group_positions]
        groups: dict[tuple, list[tuple]] = defaultdict(list)
        for row in child.rows:
            key = tuple(row[i] for i in group_positions)
            groups[key].append(row)
        rows = [
            key + (self._aggregate_rows(node, child, members),)
            for key, members in groups.items()
        ]
        self.stats.count_operator("Aggregate", rows_in=len(child), rows_out=len(rows))
        return Relation(group_labels + [output_label], rows)

    @staticmethod
    def _aggregate_rows(node: Aggregate, relation: Relation, rows: list[tuple]) -> Any:
        if node.function == "COUNT" and node.argument is None:
            return len(rows)
        values = []
        for row in rows:
            value = node.argument.evaluate(relation, row)
            if value is not None:
                values.append(value)
        if node.function == "COUNT":
            return len(values)
        if not values:
            return None
        if node.function == "SUM":
            return sum(values)
        if node.function == "AVG":
            return sum(values) / len(values)
        if node.function == "MIN":
            return min(values)
        if node.function == "MAX":
            return max(values)
        raise ValueError(f"unsupported aggregate {node.function!r}")  # pragma: no cover


def execute(plan: PlanNode, database: Database, stats: ExecutionStats | None = None) -> Relation:
    """Convenience wrapper: evaluate ``plan`` against ``database``."""
    return Executor(database, stats).execute(plan)
