"""Plan executor.

The executor evaluates a :class:`~repro.relational.algebra.PlanNode` tree
against a :class:`~repro.relational.database.Database` and returns a
:class:`~repro.relational.relation.Relation`.  It is deliberately simple —
recursive, materialising — because every algorithm in the paper manipulates
*which* operators get executed, not *how* an individual operator is executed.

*How* an operator is executed is nevertheless pluggable: the ``engine``
switch selects between the original tuple-at-a-time interpreter (``"row"``),
a columnar batch engine (``"columnar"``, the default) that evaluates
operators column-wise over :class:`~repro.relational.columnar.ColumnBatch`
instances with predicates compiled once per operator, a parallel sharded
engine (``"parallel"``) that runs the columnar operators morsel-wise over a
worker pool (:mod:`repro.relational.parallel`) and falls back *per node* to
the serial columnar code whenever an input is too small to shard, and a
NumPy-vectorized engine (``"vector"``, requires the optional NumPy extra)
that replaces the columnar sweeps with dtype-specialized array kernels
(:mod:`repro.relational.vector`) and falls back *per node* to the serial
columnar code for columns without a clean dtype.  All engines produce
identical relations, identical :class:`ExecutionStats` counters and share
the hash-index fast path, the plan cache and the materialization policies;
the columnar engine is simply faster (see
``benchmarks/bench_engine_columnar.py``), the parallel engine scales the
columnar sweeps with cores (``benchmarks/bench_engine_parallel.py``) and
the vector engine replaces them with C-speed array kernels
(``benchmarks/bench_engine_vector.py``).

Two physical optimisations are implemented because the figures depend on
realistic relative costs:

* equality selections directly above a base-relation scan use a hash index
  (a conjunction containing such an equality looks up the index and filters
  the candidates with the full predicate);
* equi-joins use a hash join — on a *composite* key when several equality
  conjuncts connect the two inputs; all other joins and Cartesian products
  are nested loops.

Logical optimisation is the job of :mod:`repro.relational.optimizer`: when an
``optimizer`` is supplied, every plan handed to :meth:`Executor.execute` is
rewritten (and memoized per canonical fingerprint) before dispatch, for both
engines alike.

Each executed operator is recorded in an
:class:`~repro.relational.stats.ExecutionStats` so that evaluators can report
the number of source operators they ran (Table IV of the paper).
"""

from __future__ import annotations

from collections import defaultdict
from itertools import chain, repeat
from typing import Any

from repro.relational.algebra import (
    Aggregate,
    Join,
    Materialized,
    PlanNode,
    Product,
    Project,
    Scan,
    Select,
    Union,
)
from repro.relational.columnar import ColumnBatch, expression_values, predicate_mask
from repro.relational.database import Database
from repro.relational.expressions import ColumnRef, Literal
from repro.relational.plancache import MaterializationPolicy, MaterializeAll, PlanCache
from repro.relational.predicates import Comparison, Predicate, conjunction
from repro.relational.relation import Relation, combine_labels, unique_labels
from repro.relational.stats import ExecutionStats
from repro.relational.types import (
    FAMILY_EMPTY,
    FAMILY_NUMERIC,
    FAMILY_STRING,
    _try_parse_number,
    column_family,
    hash_compatible,
)
from repro.relational.vector import (
    numpy_available,
    vector_distinct_indices,
    vector_group_indices,
    vector_join_indices,
    vector_product_select_positions,
    vector_select_indices,
    vector_union_distinct_indices,
)

#: Every engine this build knows about (``"vector"`` additionally needs the
#: optional NumPy dependency — see :func:`available_engines`).
ENGINES = ("row", "columnar", "parallel", "vector")

#: Engine used when none is requested (the columnar batch engine).
DEFAULT_ENGINE = "columnar"

#: Engines that evaluate plans over :class:`ColumnBatch` instances.
_BATCH_ENGINES = ("columnar", "parallel", "vector")


def available_engines() -> tuple[str, ...]:
    """The engines usable in this environment.

    ``"vector"`` requires NumPy (an optional extra); without it the engine is
    excluded here and requesting it raises a ``ValueError`` naming exactly
    this list.
    """
    if numpy_available():
        return ENGINES
    return tuple(engine for engine in ENGINES if engine != "vector")


class Executor:
    """Evaluates relational-algebra plans against a database.

    When a :class:`~repro.relational.plancache.PlanCache` is supplied, the
    executor consults a materialization policy at every node: nodes the
    policy selects are answered from the cache when possible (recording a
    plan-cache hit and the operators saved in :class:`ExecutionStats`) and
    stored after execution otherwise.  This is how e-MQO's global plan and
    the batch serving API share work across source queries; without a cache
    the executor behaves exactly as before.

    ``engine`` selects the operator implementations: ``"columnar"`` (default)
    evaluates whole batches column-wise, ``"row"`` interprets tuple-at-a-time,
    ``"parallel"`` runs the columnar operators morsel-wise over a worker
    pool (tuned by ``parallel``, a
    :class:`~repro.relational.parallel.ParallelConfig`; the process-wide
    default applies when omitted) and falls back per node to the serial
    columnar code for inputs below the sharding threshold, and ``"vector"``
    (requires NumPy) runs dtype-specialized array kernels and falls back per
    node for columns the kernels cannot represent exactly.  A plan node the
    columnar engine has no implementation for falls back to the row
    implementation transparently.

    ``inflight`` (used by the batch evaluator's inter-query parallelism)
    is a :class:`~repro.relational.parallel.InflightComputations` registry:
    when several concurrent executors share one plan cache, a shared
    materialization is computed by exactly one of them while the others wait
    on its future.
    """

    def __init__(
        self,
        database: Database,
        stats: ExecutionStats | None = None,
        cache: PlanCache | None = None,
        policy: MaterializationPolicy | None = None,
        engine: str = DEFAULT_ENGINE,
        optimizer=None,
        parallel=None,
        inflight=None,
        pools=None,
        tracer=None,
    ):
        self.database = database
        self.stats = stats if stats is not None else ExecutionStats()
        self.cache = cache
        if policy is None and cache is not None:
            policy = MaterializeAll()
        self.policy = policy
        if engine not in ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}; available: {available_engines()}"
            )
        if engine == "vector" and not numpy_available():
            raise ValueError(
                "engine 'vector' requires NumPy, which is not installed; "
                f"available: {available_engines()} "
                "(install the optional extra: pip install repro[vector])"
            )
        self.engine = engine
        #: True on the vector engine: operators try the NumPy kernels in
        #: :mod:`repro.relational.vector` first and fall back per node.
        self.vector = engine == "vector"
        #: optional :class:`~repro.relational.optimizer.Optimizer`; when set,
        #: every plan handed to :meth:`execute` is optimized first (memoized
        #: per canonical fingerprint inside the optimizer).
        self.optimizer = optimizer
        #: :class:`~repro.relational.parallel.ParallelConfig` driving the
        #: morsel operators; ``None`` on the serial engines.
        if engine == "parallel" and parallel is None:
            from repro.relational.parallel import default_config

            parallel = default_config()
        self.parallel = parallel if engine == "parallel" else None
        #: compute-once registry shared with concurrent executors (see above).
        self.inflight = inflight
        #: optional :class:`~repro.relational.parallel.PoolManager` owning the
        #: worker pools the morsel kernels run on (a session's, usually); the
        #: process-wide default serves executors without one.
        self.pools = pools
        #: optional :class:`~repro.obs.trace.Tracer`: when set, every
        #: dispatched operator runs inside an ``op:<Type>`` span (engine and
        #: rows_out attributes; the count_operator events carry rows_in/out
        #: exactly as the stats count them) and cache probes record
        #: hit/miss events.  ``None`` keeps dispatch on a no-op fast path.
        self.tracer = tracer
        # Per-execute scan snapshots: the first scan of each base relation
        # pins a relabelled view (shared rows + version token), so every
        # later scan in the same plan — a self-join, say — reads the same
        # snapshot even if a concurrent writer swaps the data mid-execution.
        self._scan_pins: dict[str, Relation] = {}
        # Version tokens captured *before* reading data (from scan pins and
        # from cache hits' recorded versions); handed to PlanCache.put so a
        # result computed over pre-write data is never recorded under a
        # post-write token.
        self._version_pins: dict[str, int] = {}

    # ------------------------------------------------------------------ #
    def execute(self, plan: PlanNode) -> Relation:
        """Evaluate ``plan`` and return its result relation."""
        self._scan_pins = {}
        self._version_pins = {}
        if self.optimizer is not None:
            if self.tracer is not None:
                with self.tracer.span("optimize", engine=self.engine):
                    plan = self.optimizer.optimize(plan, self.stats)
            else:
                plan = self.optimizer.optimize(plan, self.stats)
        if self.engine in _BATCH_ENGINES:
            return self._evaluate_columnar(plan).to_relation()
        return self._evaluate(plan)

    def execute_query(self, plan: PlanNode) -> Relation:
        """Evaluate a complete source query (counts one source query in stats)."""
        self.stats.count_source_query()
        return self.execute(plan)

    # ------------------------------------------------------------------ #
    def _evaluate(self, node: PlanNode) -> Relation:
        if isinstance(node, Materialized):
            return node.relation
        if self.cache is None or self.policy is None:
            return self._dispatch(node)
        key = self.policy.cache_key(node)
        if key is None:
            return self._dispatch(node)
        entry = self.cache.get(key, self.database)
        if entry is not None:
            self.stats.count_cache_hit(entry.operator_count)
            self._trace_cache("hit", operators_saved=entry.operator_count)
            self._merge_version_pins(entry.dependency_versions)
            return entry.relation
        self.stats.count_cache_miss()
        self._trace_cache("miss")
        result = self._dispatch(node)
        self.cache.put(key, node, result, self.database, versions=self._version_pins)
        return result

    def _trace_cache(self, outcome: str, **attributes) -> None:
        """Record a plan-cache probe event on the current span (if traced)."""
        if self.tracer is not None:
            self.tracer.event("plan-cache", outcome=outcome, **attributes)

    def _dispatch(self, node: PlanNode) -> Relation:
        tracer = self.tracer
        if tracer is None:
            return self._dispatch_node(node)
        # One span per dispatched operator.  The count_operator events land
        # inside it (via the ambient tracer), so an indexed select's fused
        # Scan+Select pair shows up as two operator events on one span —
        # exactly the two operators the stats record.
        with tracer.span(
            f"op:{type(node).__name__}", engine=self.engine
        ) as span:
            result = self._dispatch_node(node)
            span.attributes["rows_out"] = len(result)
            return result

    def _dispatch_node(self, node: PlanNode) -> Relation:
        if isinstance(node, Scan):
            return self._evaluate_scan(node)
        if isinstance(node, Select):
            return self._evaluate_select(node)
        if isinstance(node, Project):
            return self._evaluate_project(node)
        if isinstance(node, Product):
            return self._evaluate_product(node)
        if isinstance(node, Join):
            return self._evaluate_join(node)
        if isinstance(node, Union):
            return self._evaluate_union(node)
        if isinstance(node, Aggregate):
            return self._evaluate_aggregate(node)
        raise TypeError(f"cannot execute plan node of type {type(node).__name__}")

    # -- leaves ---------------------------------------------------------- #
    def _pinned_base(self, name: str) -> Relation:
        """This execution's snapshot of base relation ``name`` (pinned once)."""
        pinned = self._scan_pins.get(name)
        if pinned is None:
            pinned = self.database.relation(name).rename({})
            self._scan_pins[name] = pinned
            self._merge_version_pins({name: pinned.version})
        return pinned

    def _pinned_scan(self, name: str, alias: str | None) -> Relation:
        """The pinned snapshot of ``name``, requalified under ``alias``."""
        relation = self._pinned_base(name)
        if alias is None or alias == relation.name:
            return relation
        return relation.prefixed(alias)

    def _merge_version_pins(self, versions: dict[str, int]) -> None:
        """Fold dependency versions into this execution's capture set.

        On a conflict (the same relation seen at two versions within one
        execution — only possible under a concurrent write) the *older*
        token wins: recording the entry as older than it might be can only
        cause a spurious recompute, never a stale serve.
        """
        pins = self._version_pins
        for name, version in versions.items():
            current = pins.get(name)
            pins[name] = version if current is None else min(current, version)

    def _evaluate_scan(self, node: Scan) -> Relation:
        relation = self._pinned_scan(node.relation, node.alias)
        self.stats.count_operator("Scan", rows_in=len(relation), rows_out=len(relation))
        return relation

    # -- selection -------------------------------------------------------- #
    def _evaluate_select(self, node: Select) -> Relation:
        indexed = self._try_indexed_select(node)
        if indexed is not None:
            return indexed
        child = self._evaluate(node.child)
        predicate = node.predicate
        rows = [row for row in child.rows if predicate.evaluate(child, row)]
        self.stats.count_operator("Select", rows_in=len(child), rows_out=len(rows))
        return Relation(child.columns, rows, name=child.name)

    def _try_indexed_select(self, node: Select) -> Relation | None:
        """Fast path: an equality conjunct over a base-relation scan uses an index.

        A single ``column = constant`` comparison is answered straight from
        the hash index (the original fast path); a conjunction whose *first*
        conjunct is such a comparison looks up the index on it and filters
        the candidates with the full predicate (the optimizer's selection
        merging produces exactly this shape, inner predicate first).  Only
        the first conjunct is eligible: in the unoptimized stacked-select
        chain that is the one selection sitting directly on the scan — the
        only place the fast path could fire — so optimized and unoptimized
        runs take index semantics on exactly the same comparison.
        """
        if not isinstance(node.child, Scan):
            return None
        scan = node.child
        try:
            base = self._pinned_base(scan.relation)
        except KeyError:
            return None
        conjuncts = node.predicate.conjuncts()
        conjunct = conjuncts[0]
        if not isinstance(conjunct, Comparison) or conjunct.op != "=":
            return None
        if not (
            isinstance(conjunct.left, ColumnRef) and isinstance(conjunct.right, Literal)
        ):
            return None
        ref = conjunct.left
        if ref.qualifier is not None and ref.qualifier != scan.label:
            return None
        try:
            position = base.resolve(ref.name)
        except KeyError:
            return None
        attribute = base.columns[position].split(".", 1)[-1]
        if not self._index_semantics_exact(
            scan.relation, attribute, conjunct.right.value
        ):
            # The fast path substitutes dict-keyed lookup for coerced
            # equality; it only fires when the column profile proves the two
            # agree (e.g. a numeric column, or a string column against a
            # string literal).  This makes the generic coercing path the
            # single source of truth on every column — essential because the
            # optimizer's select-merge/pushdown move comparisons across the
            # fast-path boundary, and answers must not depend on which side
            # they land.
            return None
        index = self.database.index(scan.relation, attribute)
        rows = self._index_lookup(index, conjunct.right.value)
        if scan.alias is None or scan.alias == base.name:
            columns, name = base.columns, base.name
        else:
            columns = [f"{scan.alias}.{label.split('.', 1)[-1]}" for label in base.columns]
            name = scan.alias
        result = Relation(columns, rows, name=name)
        if len(conjuncts) > 1:
            predicate = node.predicate
            filtered = [row for row in result.rows if predicate.evaluate(result, row)]
            result = Relation(columns, filtered, name=name)
        # The scan itself is implicit in an index lookup; record both operators
        # with the same cardinalities the generic path would, so that operator
        # *and row* counters are identical whether or not the fast path fires
        # (the invariant tests/relational/test_columnar.py pins across the
        # row, indexed-select and columnar paths).
        self.stats.count_operator("Scan", rows_in=len(base), rows_out=len(base))
        self.stats.count_operator("Select", rows_in=len(base), rows_out=len(result))
        return result

    def _index_semantics_exact(self, relation_name: str, attribute: str, literal: Any) -> bool:
        """True when an index lookup equals coerced equality for this column.

        Uses the database's version-keyed statistics catalog: a numeric (or
        empty) column agrees for every literal (``_index_lookup`` parses
        string literals with the same rules as :func:`comparable`); a string
        column agrees only for string literals (a numeric literal against
        e.g. the stored string ``"2.0"`` coerces equal but can never hash
        equal).  NaN literals never agree (``NaN = NaN`` is false under the
        predicate but can identity-match a dict key).
        """
        if literal is None or literal != literal:
            return False
        stats = self.database.stats_catalog.column(relation_name, attribute)
        if stats is None:
            return False
        if stats.family in (FAMILY_NUMERIC, FAMILY_EMPTY):
            return True
        return stats.family == FAMILY_STRING and isinstance(literal, str)

    @staticmethod
    def _index_lookup(index: Any, value: Any) -> list[tuple]:
        """Index lookup tolerant of int/str literal representation differences."""
        rows = index.lookup_rows(value)
        if rows:
            return rows
        if isinstance(value, str):
            parsed = _try_parse_number(value)
            if parsed is not None:
                rows = index.lookup_rows(parsed)
                if rows:
                    return rows
        elif isinstance(value, (int, float)):
            rows = index.lookup_rows(str(value))
            if rows:
                return rows
            if isinstance(value, int):
                rows = index.lookup_rows(float(value))
        return rows

    # -- projection -------------------------------------------------------- #
    def _evaluate_project(self, node: Project) -> Relation:
        child = self._evaluate(node.child)
        positions = [child.resolve(ref.name, ref.qualifier) for ref in node.columns]
        labels = self._unique_labels([child.columns[i] for i in positions])
        rows = [tuple(row[i] for i in positions) for row in child.rows]
        if node.distinct:
            seen: set[tuple] = set()
            unique_rows = []
            for row in rows:
                if row not in seen:
                    seen.add(row)
                    unique_rows.append(row)
            rows = unique_rows
        self.stats.count_operator("Project", rows_in=len(child), rows_out=len(rows))
        return Relation(labels, rows, name=child.name)

    @staticmethod
    def _unique_labels(labels: list[str]) -> list[str]:
        """Deduplicate output labels (shared with the optimizer's inference)."""
        return unique_labels(labels)

    # -- product / join ---------------------------------------------------- #
    def _evaluate_product(self, node: Product) -> Relation:
        left = self._evaluate(node.left)
        right = self._evaluate(node.right)
        columns = self._combine_columns(left, right)
        rows = [lrow + rrow for lrow in left.rows for rrow in right.rows]
        self.stats.count_operator(
            "Product", rows_in=len(left) + len(right), rows_out=len(rows)
        )
        return Relation(columns, rows)

    def _evaluate_join(self, node: Join) -> Relation:
        left = self._evaluate(node.left)
        right = self._evaluate(node.right)
        columns = self._combine_columns(left, right)
        combined = Relation(columns, [])
        pairs = self._find_hash_join(node.predicate, left, right)
        if pairs:
            residual = node.predicate
            rows = []
            if len(pairs) == 1:
                left_pos, right_pos = pairs[0]
                buckets: dict[Any, list[tuple]] = defaultdict(list)
                for rrow in right.rows:
                    buckets[rrow[right_pos]].append(rrow)
                for lrow in left.rows:
                    for rrow in buckets.get(lrow[left_pos], ()):
                        candidate = lrow + rrow
                        if residual.evaluate(combined, candidate):
                            rows.append(candidate)
            else:
                # Composite key: hash on the tuple of every equality conjunct
                # between the two inputs instead of the first one alone.
                left_positions = [pair[0] for pair in pairs]
                right_positions = [pair[1] for pair in pairs]
                buckets = defaultdict(list)
                for rrow in right.rows:
                    buckets[tuple(rrow[p] for p in right_positions)].append(rrow)
                for lrow in left.rows:
                    key = tuple(lrow[p] for p in left_positions)
                    for rrow in buckets.get(key, ()):
                        candidate = lrow + rrow
                        if residual.evaluate(combined, candidate):
                            rows.append(candidate)
        else:
            rows = [
                lrow + rrow
                for lrow in left.rows
                for rrow in right.rows
                if node.predicate.evaluate(combined, lrow + rrow)
            ]
        self.stats.count_operator("Join", rows_in=len(left) + len(right), rows_out=len(rows))
        return Relation(columns, rows)

    def _evaluate_union(self, node: Union) -> Relation:
        left = self._evaluate(node.left)
        right = self._evaluate(node.right)
        if len(left.columns) != len(right.columns):
            raise ValueError(
                f"UNION requires inputs of equal arity, got {len(left.columns)} "
                f"and {len(right.columns)} columns"
            )
        rows = list(left.rows) + list(right.rows)
        if node.distinct:
            seen: set[tuple] = set()
            unique_rows = []
            for row in rows:
                if row not in seen:
                    seen.add(row)
                    unique_rows.append(row)
            rows = unique_rows
        self.stats.count_operator("Union", rows_in=len(left) + len(right), rows_out=len(rows))
        return Relation(left.columns, rows, name=left.name)

    @staticmethod
    def _combine_columns(left: Relation, right: Relation) -> list[str]:
        """Concatenate column labels (shared with the optimizer's inference)."""
        return combine_labels(left.columns, right.columns)

    def _find_hash_join(
        self, predicate: Predicate, left, right
    ) -> list[tuple[int, int]]:
        """All ``left_col = right_col`` conjuncts usable as one composite hash key.

        When several equality conjuncts connect the same pair of inputs the
        join hashes on the tuple of all of them instead of hashing on the
        first and re-filtering the (much larger) candidate set.

        The first resolvable conjunct is always keyed (the pre-composite
        behaviour); additional conjuncts join the key only when both columns
        live in the same coercion family, because key matching uses dict
        semantics while the residual predicate pass coerces (``"2" = 2`` is
        true under :func:`~repro.relational.types.comparable` but can never
        match a hash bucket) — on mixed-representation columns those
        conjuncts stay in the residual, preserving answers exactly.
        """
        pairs: list[tuple[int, int]] = []
        seen: set[tuple[int, int]] = set()
        for conjunct in predicate.conjuncts():
            if not isinstance(conjunct, Comparison) or not conjunct.is_equi_column:
                continue
            first, second = conjunct.left, conjunct.right
            sides = self._resolve_sides(first, second, left, right)
            if sides is not None and sides not in seen:
                seen.add(sides)
                pairs.append(sides)
        if len(pairs) > 1:
            kept = pairs[:1]
            for left_pos, right_pos in pairs[1:]:
                left_family = column_family(self._column_values(left, left_pos))
                right_family = column_family(self._column_values(right, right_pos))
                if hash_compatible(left_family, right_family):
                    kept.append((left_pos, right_pos))
            pairs = kept
        return pairs

    @staticmethod
    def _column_values(relation, position: int):
        """One column's values from a Relation or a ColumnBatch."""
        if isinstance(relation, ColumnBatch):
            return relation.data[position]
        return (row[position] for row in relation.rows)

    @staticmethod
    def _resolve_sides(
        first: ColumnRef, second: ColumnRef, left: Relation, right: Relation
    ) -> tuple[int, int] | None:
        def resolve(relation: Relation, ref: ColumnRef) -> int | None:
            try:
                return relation.resolve(ref.name, ref.qualifier)
            except KeyError:
                return None

        left_pos, right_pos = resolve(left, first), resolve(right, second)
        if left_pos is not None and right_pos is not None:
            return left_pos, right_pos
        left_pos, right_pos = resolve(left, second), resolve(right, first)
        if left_pos is not None and right_pos is not None:
            return left_pos, right_pos
        return None

    # -- aggregation -------------------------------------------------------- #
    def _evaluate_aggregate(self, node: Aggregate) -> Relation:
        child = self._evaluate(node.child)
        argument_label = str(node.argument) if node.argument is not None else "*"
        output_label = f"{node.function}({argument_label})"

        if not node.group_by:
            value = self._aggregate_rows(node, child, child.rows)
            rows = [(value,)]
            self.stats.count_operator("Aggregate", rows_in=len(child), rows_out=1)
            return Relation([output_label], rows)

        group_positions = [child.resolve(ref.name, ref.qualifier) for ref in node.group_by]
        group_labels = [child.columns[i] for i in group_positions]
        groups: dict[tuple, list[tuple]] = defaultdict(list)
        for row in child.rows:
            key = tuple(row[i] for i in group_positions)
            groups[key].append(row)
        rows = [
            key + (self._aggregate_rows(node, child, members),)
            for key, members in groups.items()
        ]
        self.stats.count_operator("Aggregate", rows_in=len(child), rows_out=len(rows))
        return Relation(group_labels + [output_label], rows)

    @staticmethod
    def _aggregate_rows(node: Aggregate, relation: Relation, rows: list[tuple]) -> Any:
        values = None
        if node.argument is not None:
            values = [node.argument.evaluate(relation, row) for row in rows]
        return Executor._aggregate_values(node, values, len(rows))

    # ================================================================== #
    # columnar engine
    # ================================================================== #
    def _evaluate_columnar(self, node: PlanNode) -> ColumnBatch:
        """Columnar twin of :meth:`_evaluate` (same cache/policy handling)."""
        if isinstance(node, Materialized):
            return ColumnBatch.from_relation(node.relation)
        if self.cache is None or self.policy is None:
            return self._dispatch_columnar(node)
        key = self.policy.cache_key(node)
        if key is None:
            return self._dispatch_columnar(node)
        if self.inflight is not None:
            return self._compute_once(key, node)
        entry = self.cache.get(key, self.database)
        if entry is not None:
            self.stats.count_cache_hit(entry.operator_count)
            self._trace_cache("hit", operators_saved=entry.operator_count)
            self._merge_version_pins(entry.dependency_versions)
            return ColumnBatch.from_relation(entry.relation)
        self.stats.count_cache_miss()
        self._trace_cache("miss")
        result = self._dispatch_columnar(node)
        self.cache.put(
            key, node, result.to_relation(), self.database, versions=self._version_pins
        )
        return result

    def _compute_once(self, key: str, node: PlanNode) -> ColumnBatch:
        """Compute a shared materialization exactly once across executors.

        The first executor to claim ``key`` probes the shared plan cache
        (one counting probe, like serial), executes the sub-plan on a miss,
        stores it, and publishes ``(relation, operator_count)`` on the
        claim's future; concurrent executors that lose the claim wait on the
        future *without touching the cache* and account the result as a
        plan-cache hit in their executor-level stats — so a shared sub-plan
        can never execute twice and the cache's own hit/miss counters are
        never double-counted (waiters served by a future simply don't appear
        in the cache snapshot's lookups).
        """
        future, owner = self.inflight.claim(key)
        if not owner:
            relation, operator_count, versions = future.result()
            self.stats.count_cache_hit(operator_count)
            self._trace_cache("hit", operators_saved=operator_count, inflight=True)
            self._merge_version_pins(versions)
            return ColumnBatch.from_relation(relation)
        try:
            entry = self.cache.get(key, self.database)
            if entry is not None:
                self.stats.count_cache_hit(entry.operator_count)
                self._trace_cache("hit", operators_saved=entry.operator_count)
                self._merge_version_pins(entry.dependency_versions)
                self.inflight.resolve(
                    key,
                    future,
                    (entry.relation, entry.operator_count, dict(entry.dependency_versions)),
                )
                return ColumnBatch.from_relation(entry.relation)
            self.stats.count_cache_miss()
            self._trace_cache("miss")
            result = self._dispatch_columnar(node)
            relation = result.to_relation()
            entry = self.cache.put(
                key, node, relation, self.database, versions=self._version_pins
            )
            self.inflight.resolve(
                key,
                future,
                (relation, entry.operator_count, dict(entry.dependency_versions)),
            )
            return result
        except BaseException as error:
            self.inflight.fail(key, future, error)
            raise

    def _dispatch_columnar(self, node: PlanNode) -> ColumnBatch:
        tracer = self.tracer
        if tracer is None:
            return self._dispatch_columnar_node(node)
        with tracer.span(
            f"op:{type(node).__name__}", engine=self.engine
        ) as span:
            result = self._dispatch_columnar_node(node)
            span.attributes["rows_out"] = len(result)
            return result

    def _dispatch_columnar_node(self, node: PlanNode) -> ColumnBatch:
        if isinstance(node, Scan):
            return self._scan_columnar(node)
        if isinstance(node, Select):
            return self._select_columnar(node)
        if isinstance(node, Project):
            return self._project_columnar(node)
        if isinstance(node, Product):
            return self._product_columnar(node)
        if isinstance(node, Join):
            return self._join_columnar(node)
        if isinstance(node, Union):
            return self._union_columnar(node)
        if isinstance(node, Aggregate):
            return self._aggregate_columnar(node)
        # Row fallback: a node type without a columnar implementation is
        # evaluated by the row engine (unknown types still raise TypeError).
        # _dispatch_node, not _dispatch: the operator span for this node is
        # already open above, a second one would double-count it.
        return ColumnBatch.from_relation(self._dispatch_node(node))

    # -- leaves ---------------------------------------------------------- #
    def _scan_columnar(self, node: Scan) -> ColumnBatch:
        relation = self._pinned_scan(node.relation, node.alias)
        self.stats.count_operator("Scan", rows_in=len(relation), rows_out=len(relation))
        return ColumnBatch.from_relation(relation)

    # -- parallel hooks ---------------------------------------------------- #
    def _use_parallel(self, batch: ColumnBatch) -> bool:
        """True when ``batch`` is large enough for the parallel engine to shard.

        Always False on the serial engines (``self.parallel`` is ``None``);
        on the parallel engine a too-small input makes the operator fall back
        to the serial columnar implementation — per node, so one plan can mix
        sharded and serial operators freely.
        """
        return self.parallel is not None and self.parallel.shards_for(len(batch)) > 1

    def _predicate_mask(self, predicate: Predicate, batch: ColumnBatch) -> list[bool]:
        """Row mask for ``predicate``, morsel-parallel when worthwhile."""
        if self._use_parallel(batch):
            from repro.relational.parallel import parallel_predicate_mask

            return parallel_predicate_mask(
                predicate, batch, self.parallel, pools=self.pools, tracer=self.tracer
            )
        return predicate_mask(predicate, batch)

    def _filtered(self, predicate: Predicate, batch: ColumnBatch) -> ColumnBatch:
        """``batch`` filtered by ``predicate``, vector kernel first when enabled."""
        if self.vector:
            indices = vector_select_indices(predicate, batch)
            if indices is not None:
                return batch.take(indices)
        return batch.filter(self._predicate_mask(predicate, batch))

    # -- selection -------------------------------------------------------- #
    def _select_columnar(self, node: Select) -> ColumnBatch:
        indexed = self._try_indexed_select(node)
        if indexed is not None:
            return ColumnBatch.from_relation(indexed)
        if (
            self.vector
            and isinstance(node.child, Product)
            and (
                self.cache is None
                or self.policy is None
                or self.policy.cache_key(node.child) is None
            )
        ):
            # Fused path: mask the virtual product, materialise only
            # survivors.  Skipped when the Product node itself is cacheable
            # so warm-cache runs keep identical get/put behaviour.
            return self._select_over_product(node, node.child)
        child = self._evaluate_columnar(node.child)
        result = self._filtered(node.predicate, child)
        self.stats.count_operator("Select", rows_in=len(child), rows_out=len(result))
        return result

    def _select_over_product(self, node: Select, product: Product) -> ColumnBatch:
        """Selection fused over a cross product (vector engine only).

        The columnar product's cost is dominated by materialising ``n × m``
        value lists that a selective predicate immediately throws away.  When
        the whole predicate vectorises, the mask is computed over a *virtual*
        product (per-side masks repeated/tiled, cross-side comparisons
        broadcast — see :func:`vector_product_select_positions`) and only
        surviving rows are gathered from the original side columns.  Operator
        counts and gathered values are byte-identical to the unfused
        Product → Select pair; a predicate that does not fully vectorise
        materialises the product exactly as before.
        """
        left = self._evaluate_columnar(product.left)
        right = self._evaluate_columnar(product.right)
        columns = self._combine_columns(left, right)
        left_n, right_n = len(left), len(right)
        out = left_n * right_n
        positions = vector_product_select_positions(
            node.predicate, left, right, columns
        )
        self.stats.count_operator("Product", rows_in=left_n + right_n, rows_out=out)
        if positions is None:
            child = ColumnBatch(
                columns, self._product_data(left, right), length=out
            )
            result = self._filtered(node.predicate, child)
        else:
            left_rows, right_rows = positions
            data = [list(map(column.__getitem__, left_rows)) for column in left.data]
            data += [
                list(map(column.__getitem__, right_rows)) for column in right.data
            ]
            result = ColumnBatch(columns, data, length=len(left_rows))
        self.stats.count_operator("Select", rows_in=out, rows_out=len(result))
        return result

    # -- projection -------------------------------------------------------- #
    def _project_columnar(self, node: Project) -> ColumnBatch:
        child = self._evaluate_columnar(node.child)
        positions = [child.resolve(ref.name, ref.qualifier) for ref in node.columns]
        labels = self._unique_labels([child.columns[i] for i in positions])
        data = [child.data[i] for i in positions]
        length = len(child)
        if node.distinct:
            keep = (
                vector_distinct_indices(child, positions)
                if self.vector and data
                else None
            )
            if keep is None and data and self._use_parallel(child):
                from repro.relational.parallel import parallel_distinct_indices

                keep = parallel_distinct_indices(
                    data, length, self.parallel, pools=self.pools, tracer=self.tracer
                )
            if keep is None:
                seen: set[tuple] = set()
                keep = []
                if data:
                    for i, row in enumerate(zip(*data)):
                        if row not in seen:
                            seen.add(row)
                            keep.append(i)
                elif length:
                    keep.append(0)  # zero-column projection: one distinct empty row
            data = [[column[i] for i in keep] for column in data]
            length = len(keep)
        self.stats.count_operator("Project", rows_in=len(child), rows_out=length)
        return ColumnBatch(labels, data, name=child.name, length=length)

    # -- product / join ---------------------------------------------------- #
    @staticmethod
    def _product_data(left: ColumnBatch, right: ColumnBatch) -> list[list]:
        """Materialised cross-product columns (left-outer/right-inner order).

        Left columns repeat each value ``len(right)`` times in place (map/
        repeat/chain run the whole expansion at C speed); right columns tile
        whole, matching the row engine's ordering.
        """
        left_n, right_n = len(left), len(right)
        data = [
            list(chain.from_iterable(map(repeat, column, repeat(right_n))))
            for column in left.data
        ]
        data += [column * left_n for column in right.data]
        return data

    def _product_columnar(self, node: Product) -> ColumnBatch:
        left = self._evaluate_columnar(node.left)
        right = self._evaluate_columnar(node.right)
        columns = self._combine_columns(left, right)
        left_n, right_n = len(left), len(right)
        out = left_n * right_n
        self.stats.count_operator("Product", rows_in=left_n + right_n, rows_out=out)
        return ColumnBatch(columns, self._product_data(left, right), length=out)

    def _join_columnar(self, node: Join) -> ColumnBatch:
        left = self._evaluate_columnar(node.left)
        right = self._evaluate_columnar(node.right)
        columns = self._combine_columns(left, right)
        pairs = self._find_hash_join(node.predicate, left, right)
        # When the whole predicate is exactly the hash-join equalities, the
        # bucket match already decides it (None/NaN keys never satisfy an
        # equality, so they are dropped at build time) and no residual pass
        # is needed.
        pure_equi = len(pairs) >= 1 and len(pairs) == len(node.predicate.conjuncts())
        left_idx: list[int] = []
        right_idx: list[int] = []
        vectorized = (
            vector_join_indices(left, right, pairs) if self.vector and pairs else None
        )
        if vectorized is not None:
            # Factorize + searchsorted emitted the exact serial probe order;
            # None/NaN keys cannot occur on classified columns, so pure_equi
            # changes nothing here (the residual pass is still skipped).
            left_idx, right_idx = vectorized
        elif pairs and (self._use_parallel(left) or self._use_parallel(right)):
            # Morsel-parallel build + probe (identical index order — see
            # repro.relational.parallel.operators.parallel_join_indices).
            from repro.relational.parallel import parallel_join_indices

            left_idx, right_idx = parallel_join_indices(
                left,
                right,
                pairs,
                pure_equi,
                self.parallel,
                pools=self.pools,
                tracer=self.tracer,
            )
        elif len(pairs) == 1:
            left_pos, right_pos = pairs[0]
            buckets: dict[Any, list[int]] = defaultdict(list)
            if pure_equi:
                for i, value in enumerate(right.data[right_pos]):
                    if value is not None and value == value:
                        buckets[value].append(i)
            else:
                for i, value in enumerate(right.data[right_pos]):
                    buckets[value].append(i)
            lookup = buckets.get
            for i, value in enumerate(left.data[left_pos]):
                bucket = lookup(value)
                if bucket:
                    left_idx.extend([i] * len(bucket))
                    right_idx.extend(bucket)
        elif pairs:
            # Composite key: one bucket per tuple of build-side key values.
            right_key_columns = [right.data[pair[1]] for pair in pairs]
            left_key_columns = [left.data[pair[0]] for pair in pairs]
            buckets = defaultdict(list)
            if pure_equi:
                for i, key in enumerate(zip(*right_key_columns)):
                    if all(value is not None and value == value for value in key):
                        buckets[key].append(i)
            else:
                for i, key in enumerate(zip(*right_key_columns)):
                    buckets[key].append(i)
            lookup = buckets.get
            for i, key in enumerate(zip(*left_key_columns)):
                bucket = lookup(key)
                if bucket:
                    left_idx.extend([i] * len(bucket))
                    right_idx.extend(bucket)
        else:
            left_n, right_n = len(left), len(right)
            repeat = range(right_n)
            left_idx = [i for i in range(left_n) for _ in repeat]
            right_idx = list(range(right_n)) * left_n
            pure_equi = False
        data = [list(map(column.__getitem__, left_idx)) for column in left.data]
        data += [list(map(column.__getitem__, right_idx)) for column in right.data]
        candidates = ColumnBatch(columns, data, length=len(left_idx))
        if pure_equi:
            result = candidates
        else:
            result = self._filtered(node.predicate, candidates)
        self.stats.count_operator(
            "Join", rows_in=len(left) + len(right), rows_out=len(result)
        )
        return result

    # -- union -------------------------------------------------------------- #
    def _union_columnar(self, node: Union) -> ColumnBatch:
        left = self._evaluate_columnar(node.left)
        right = self._evaluate_columnar(node.right)
        if len(left.columns) != len(right.columns):
            raise ValueError(
                f"UNION requires inputs of equal arity, got {len(left.columns)} "
                f"and {len(right.columns)} columns"
            )
        data = [l_col + r_col for l_col, r_col in zip(left.data, right.data)]
        length = len(left) + len(right)
        if node.distinct:
            if data:
                keep = (
                    vector_union_distinct_indices(left, right) if self.vector else None
                )
                if keep is None and (
                    self.parallel is not None and self.parallel.shards_for(length) > 1
                ):
                    from repro.relational.parallel import parallel_distinct_indices

                    keep = parallel_distinct_indices(
                        data, length, self.parallel, pools=self.pools, tracer=self.tracer
                    )
                if keep is None:
                    seen: set[tuple] = set()
                    keep = []
                    for i, row in enumerate(zip(*data)):
                        if row not in seen:
                            seen.add(row)
                            keep.append(i)
                data = [[column[i] for i in keep] for column in data]
                length = len(keep)
            elif length:
                length = 1  # zero-column union: one distinct empty row
        self.stats.count_operator(
            "Union", rows_in=len(left) + len(right), rows_out=length
        )
        return ColumnBatch(left.columns, data, name=left.name, length=length)

    # -- aggregation -------------------------------------------------------- #
    def _aggregate_columnar(self, node: Aggregate) -> ColumnBatch:
        child = self._evaluate_columnar(node.child)
        argument_label = str(node.argument) if node.argument is not None else "*"
        output_label = f"{node.function}({argument_label})"
        n = len(child)

        values: list | None = None
        if node.argument is not None and n:
            const, values = expression_values(node.argument, child)
            if const:
                values = [values] * n

        if not node.group_by:
            value = self._aggregate_values(node, values, n)
            self.stats.count_operator("Aggregate", rows_in=n, rows_out=1)
            return ColumnBatch([output_label], [[value]], length=1)

        positions = [child.resolve(ref.name, ref.qualifier) for ref in node.group_by]
        group_labels = [child.columns[i] for i in positions]
        key_columns = [child.data[i] for i in positions]
        groups = (
            vector_group_indices(child, positions, key_columns, n)
            if self.vector
            else None
        )
        parallel = groups is None and self._use_parallel(child)
        if parallel:
            from repro.relational.parallel import (
                parallel_fold_groups,
                parallel_group_indices,
            )

            groups = parallel_group_indices(
                key_columns, n, self.parallel, pools=self.pools, tracer=self.tracer
            )
        elif groups is None:
            groups = defaultdict(list)
            for i, key in enumerate(zip(*key_columns)):
                groups[key].append(i)
        data: list[list] = [[] for _ in positions] + [[]]
        if parallel:
            # Grouping ran sharded; the per-group folds are independent, so
            # they parallelise too — each fold walks its members in ascending
            # row order, the exact serial accumulation (bit-equal floats).
            def fold(members: list) -> Any:
                member_values = None if values is None else [values[i] for i in members]
                return self._aggregate_values(node, member_values, len(members))

            aggregated = parallel_fold_groups(
                fold,
                list(groups.values()),
                self.parallel,
                pools=self.pools,
                tracer=self.tracer,
            )
            for key, value in zip(groups, aggregated):
                for column, part in zip(data, key):
                    column.append(part)
                data[-1].append(value)
        else:
            for key, members in groups.items():
                for column, value in zip(data, key):
                    column.append(value)
                member_values = None if values is None else [values[i] for i in members]
                data[-1].append(self._aggregate_values(node, member_values, len(members)))
        self.stats.count_operator("Aggregate", rows_in=n, rows_out=len(groups))
        return ColumnBatch(
            group_labels + [output_label], data, length=len(groups)
        )

    @staticmethod
    def _aggregate_values(node: Aggregate, values: list | None, count: int) -> Any:
        """Aggregate a vector of argument values (mirrors ``_aggregate_rows``)."""
        if node.function == "COUNT" and node.argument is None:
            return count
        values = [value for value in (values or ()) if value is not None]
        if node.function == "COUNT":
            return len(values)
        if not values:
            return None
        if node.function == "SUM":
            return sum(values)
        if node.function == "AVG":
            return sum(values) / len(values)
        if node.function == "MIN":
            return min(values)
        if node.function == "MAX":
            return max(values)
        raise ValueError(f"unsupported aggregate {node.function!r}")  # pragma: no cover


def execute(
    plan: PlanNode,
    database: Database,
    stats: ExecutionStats | None = None,
    engine: str = DEFAULT_ENGINE,
) -> Relation:
    """Convenience wrapper: evaluate ``plan`` against ``database``."""
    return Executor(database, stats, engine=engine).execute(plan)
