"""The target-query workload of the paper (Table III).

Ten queries over the three target schemas — Q1-Q5 on Excel, Q6-Q7 on Noris and
Q8-Q10 on Paragon — combining selections, projections, Cartesian products
(including self-joins), COUNT and SUM, exactly as listed in Table III.

Two faithful-but-necessary adjustments are made, both documented in DESIGN.md:

* selection constants on *address-valued* attributes use ``'Central'`` (a
  street name that occurs in the generated instance) where the paper prints
  ``'ABC'``, so that the selections are satisfiable;
* Q3's ``σ itemNum1='00001' PO`` (a typo in the paper — ``PO`` has no
  ``itemNum``) is read as a selection on ``Item1.itemNum``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.target_query import TargetQuery
from repro.relational.algebra import Aggregate, PlanNode, Product, Project, Scan, Select
from repro.relational.expressions import col
from repro.relational.predicates import ColumnEquals, Equals
from repro.relational.schema import DatabaseSchema

#: Constants shared by several queries (all occur in the generated instance).
PHONE = "335-1736"
PERSON = "Mary"
COMPANY = "ABC"
STREET = "Central"
ITEM = "00001"


@dataclass(frozen=True)
class QuerySpec:
    """One workload query: its paper id, target schema and plan builder."""

    query_id: str
    target: str
    description: str
    builder: Callable[[], PlanNode]

    def build(self, schema: DatabaseSchema) -> TargetQuery:
        """Instantiate the query against a target schema instance."""
        if schema.name.lower() != self.target.lower():
            raise ValueError(
                f"{self.query_id} is defined for the {self.target} schema, "
                f"got {schema.name}"
            )
        return TargetQuery(self.builder(), schema, name=self.query_id)


# --------------------------------------------------------------------------- #
# plan builders, one per Table III row
# --------------------------------------------------------------------------- #
def _q1() -> PlanNode:
    """σ telephone σ priority σ invoiceTo PO."""
    plan: PlanNode = Scan("PO")
    plan = Select(plan, Equals(col("PO.invoiceTo"), PERSON))
    plan = Select(plan, Equals(col("PO.priority"), 2))
    plan = Select(plan, Equals(col("PO.telephone"), PHONE))
    return plan


def _q2() -> PlanNode:
    """σ quantity σ itemNum (PO × Item)."""
    plan: PlanNode = Product(Scan("PO"), Scan("Item"))
    plan = Select(plan, Equals(col("Item.itemNum"), ITEM))
    plan = Select(plan, Equals(col("Item.quantity"), 10))
    return plan


def _q3() -> PlanNode:
    """σ PO.orderNum=Item1.orderNum σ Item1.itemNum ((σ telephone PO) × (Item1 ⋈ Item2))."""
    items = Select(
        Product(Scan("Item", alias="Item1"), Scan("Item", alias="Item2")),
        ColumnEquals(col("Item1.orderNum"), col("Item2.orderNum")),
    )
    left = Select(Scan("PO"), Equals(col("PO.telephone"), PHONE))
    plan: PlanNode = Product(left, items)
    plan = Select(plan, Equals(col("Item1.itemNum"), ITEM))
    plan = Select(plan, ColumnEquals(col("PO.orderNum"), col("Item1.orderNum")))
    return plan


def _q4() -> PlanNode:
    """σ Item1.itemNum ((PO1 ⋈ PO2) × (Item1 ⋈ Item2)) — the paper's default query."""
    orders = Select(
        Product(Scan("PO", alias="PO1"), Scan("PO", alias="PO2")),
        ColumnEquals(col("PO1.orderNum"), col("PO2.orderNum")),
    )
    items = Select(
        Product(Scan("Item", alias="Item1"), Scan("Item", alias="Item2")),
        ColumnEquals(col("Item1.orderNum"), col("Item2.orderNum")),
    )
    plan: PlanNode = Product(orders, items)
    plan = Select(plan, Equals(col("Item1.itemNum"), ITEM))
    return plan


def _q5() -> PlanNode:
    """COUNT(σ telephone σ company σ invoiceTo σ deliverToStreet PO)."""
    plan: PlanNode = Scan("PO")
    plan = Select(plan, Equals(col("PO.deliverToStreet"), STREET))
    plan = Select(plan, Equals(col("PO.invoiceTo"), PERSON))
    plan = Select(plan, Equals(col("PO.company"), COMPANY))
    plan = Select(plan, Equals(col("PO.telephone"), PHONE))
    return Aggregate(plan, "COUNT")


def _q6() -> PlanNode:
    """σ telephone σ invoiceTo σ deliverToStreet PO (Noris)."""
    plan: PlanNode = Scan("PO")
    plan = Select(plan, Equals(col("PO.deliverToStreet"), STREET))
    plan = Select(plan, Equals(col("PO.invoiceTo"), PERSON))
    plan = Select(plan, Equals(col("PO.telephone"), PHONE))
    return plan


def _q7() -> PlanNode:
    """π itemNum,unitPrice σ orderNum σ deliverTo σ deliverToStreet (PO × Item) (Noris)."""
    plan: PlanNode = Product(Scan("PO"), Scan("Item"))
    plan = Select(plan, Equals(col("PO.deliverToStreet"), STREET))
    plan = Select(plan, Equals(col("PO.deliverTo"), PERSON))
    plan = Select(plan, Equals(col("PO.orderNum"), ITEM))
    return Project(plan, [col("Item.itemNum"), col("Item.unitPrice")])


def _q8() -> PlanNode:
    """σ billTo σ shipToAddress σ shipToPhone PO (Paragon)."""
    plan: PlanNode = Scan("PO")
    plan = Select(plan, Equals(col("PO.shipToPhone"), PHONE))
    plan = Select(plan, Equals(col("PO.shipToAddress"), STREET))
    plan = Select(plan, Equals(col("PO.billTo"), PERSON))
    return plan


def _q9() -> PlanNode:
    """SUM(π price σ telephone σ billToAddress σ itemNum (PO × Item)) (Paragon)."""
    plan: PlanNode = Product(Scan("PO"), Scan("Item"))
    plan = Select(plan, Equals(col("Item.itemNum"), ITEM))
    plan = Select(plan, Equals(col("PO.billToAddress"), STREET))
    plan = Select(plan, Equals(col("PO.telephone"), PHONE))
    projected = Project(plan, [col("Item.price")])
    return Aggregate(projected, "SUM", col("Item.price"))


def _q10() -> PlanNode:
    """COUNT(σ invoiceTo σ billToAddress (PO × Item)) (Paragon)."""
    plan: PlanNode = Product(Scan("PO"), Scan("Item"))
    plan = Select(plan, Equals(col("PO.billToAddress"), STREET))
    plan = Select(plan, Equals(col("PO.invoiceTo"), PERSON))
    return Aggregate(plan, "COUNT")


#: Table III, keyed by query id.
PAPER_QUERIES: dict[str, QuerySpec] = {
    "Q1": QuerySpec("Q1", "Excel", "3 selections on PO", _q1),
    "Q2": QuerySpec("Q2", "Excel", "2 selections over PO × Item", _q2),
    "Q3": QuerySpec("Q3", "Excel", "selections + join over PO × Item × Item", _q3),
    "Q4": QuerySpec("Q4", "Excel", "self-joins of PO and Item (default query)", _q4),
    "Q5": QuerySpec("Q5", "Excel", "COUNT over 4 selections on PO", _q5),
    "Q6": QuerySpec("Q6", "Noris", "3 selections on PO", _q6),
    "Q7": QuerySpec("Q7", "Noris", "projection over selections on PO × Item", _q7),
    "Q8": QuerySpec("Q8", "Paragon", "3 selections on PO", _q8),
    "Q9": QuerySpec("Q9", "Paragon", "SUM over selections on PO × Item", _q9),
    "Q10": QuerySpec("Q10", "Paragon", "COUNT over selections on PO × Item", _q10),
}


def paper_query(query_id: str, schema: DatabaseSchema) -> TargetQuery:
    """Build one of the Table III queries against a target schema."""
    key = query_id.upper()
    if key not in PAPER_QUERIES:
        raise KeyError(f"unknown query {query_id!r}; available: {sorted(PAPER_QUERIES)}")
    return PAPER_QUERIES[key].build(schema)


def queries_for_target(target: str) -> list[QuerySpec]:
    """The Table III queries defined on one target schema."""
    return [spec for spec in PAPER_QUERIES.values() if spec.target.lower() == target.lower()]


def paper_queries() -> list[QuerySpec]:
    """All ten Table III queries, in paper order."""
    return list(PAPER_QUERIES.values())
