"""Parameterised workload generators (Figures 11(d) and 11(e)).

The paper studies how the evaluators scale with query size using two synthetic
workloads over the Excel target schema:

* queries with 1-5 *selection* operators on different ``PO`` attributes
  (Figure 11(d));
* queries with 1-3 *Cartesian product* operators, i.e. self-joins of ``PO``
  (Figure 11(e)).

Both generators are deterministic so that benchmark runs are repeatable.
"""

from __future__ import annotations

from repro.core.target_query import TargetQuery
from repro.relational.algebra import PlanNode, Product, Scan, Select
from repro.relational.expressions import col
from repro.relational.predicates import ColumnEquals, Equals
from repro.relational.schema import DatabaseSchema
from repro.workloads.queries import COMPANY, PERSON, PHONE, STREET

#: Selection attribute/constant pairs used (in order) by :func:`selection_query`.
#: Chosen so that the attributes span several source relations and carry the
#: kind of matching ambiguity the paper's queries rely on.
SELECTION_CONDITIONS: tuple[tuple[str, object], ...] = (
    ("telephone", PHONE),
    ("invoiceTo", PERSON),
    ("priority", 2),
    ("company", COMPANY),
    ("deliverToStreet", STREET),
)


def selection_attributes(count: int) -> list[str]:
    """The ``PO`` attributes used by a ``count``-selection query."""
    if not 1 <= count <= len(SELECTION_CONDITIONS):
        raise ValueError(f"count must be in 1..{len(SELECTION_CONDITIONS)}, got {count}")
    return [attribute for attribute, _ in SELECTION_CONDITIONS[:count]]


def selection_query(count: int, schema: DatabaseSchema, alias: str = "PO") -> TargetQuery:
    """A query with ``count`` stacked selection operators on ``PO`` (Figure 11(d))."""
    if not 1 <= count <= len(SELECTION_CONDITIONS):
        raise ValueError(f"count must be in 1..{len(SELECTION_CONDITIONS)}, got {count}")
    plan: PlanNode = Scan("PO", alias=alias)
    for attribute, constant in reversed(SELECTION_CONDITIONS[:count]):
        plan = Select(plan, Equals(col(f"{alias}.{attribute}"), constant))
    return TargetQuery(plan, schema, name=f"sel-{count}")


def product_query(products: int, schema: DatabaseSchema) -> TargetQuery:
    """A query with ``products`` Cartesian products (self-joins of ``PO``, Figure 11(e)).

    ``products`` Cartesian product operators combine ``products + 1`` scans of
    ``PO``; consecutive scans are related through an ``orderNum`` equality
    selection (the paper's self-join pattern).  Each scan additionally carries
    a selection on a *different* PO attribute, which reproduces the paper's
    observation that queries over more relations handle more target attributes
    and therefore yield more distinct source queries and operators.
    """
    if products < 1:
        raise ValueError("products must be at least 1")
    plan: PlanNode = Scan("PO", alias="PO1")
    for index in range(2, products + 2):
        plan = Product(plan, Scan("PO", alias=f"PO{index}"))
        plan = Select(plan, ColumnEquals(col("PO1.orderNum"), col(f"PO{index}.orderNum")))
        attribute, constant = SELECTION_CONDITIONS[(index - 1) % len(SELECTION_CONDITIONS)]
        plan = Select(plan, Equals(col(f"PO{index}.{attribute}"), constant))
    plan = Select(plan, Equals(col("PO1.telephone"), PHONE))
    return TargetQuery(plan, schema, name=f"prod-{products}")
