"""Query workloads: the paper's Table III queries and parameterised generators."""

from repro.workloads.generators import (
    product_query,
    selection_attributes,
    selection_query,
)
from repro.workloads.queries import (
    PAPER_QUERIES,
    QuerySpec,
    paper_queries,
    paper_query,
    queries_for_target,
)

__all__ = [
    "PAPER_QUERIES",
    "QuerySpec",
    "paper_queries",
    "paper_query",
    "queries_for_target",
    "selection_query",
    "selection_attributes",
    "product_query",
]
