"""The session-first public API: a persistent facade over the whole engine.

The paper's point (conf_icde_ChengGCC12) is that probabilistic queries over
uncertain mappings are dominated by *redundant* work that sharing amortises.
The one-shot entry points (``evaluate``/``evaluate_many``/``evaluate_top_k``)
could only share within a single call: every call rebuilt the evaluator, plan
cache, statistics catalog, optimizer memo and worker pools, then threw them
away.  A :class:`Session` is the serving-engine shape instead — a long-lived
connection to one ``(database, mappings)`` pair owning all cross-query state:

* one bounded :class:`~repro.relational.plancache.PlanCache`, attached to the
  database's invalidation hooks (a ``set_relation`` drops exactly the
  dependent entries — the session can never serve stale results);
* one :class:`~repro.relational.optimizer.Optimizer` whose
  canonical-fingerprint memo and statistics catalog persist across calls;
* one :class:`~repro.relational.parallel.InflightComputations` compute-once
  registry, so shared materializations are computed exactly once across the
  concurrently running queries of ``query_many`` workloads;
* a lazily-started, session-owned
  :class:`~repro.relational.parallel.PoolManager` (``close()`` shuts the
  pools down; nothing starts until the parallel engine first needs a worker).

How queries execute is typed configuration — an
:class:`~repro.policy.ExecutionPolicy` validated eagerly at the API boundary
— with per-call keyword overrides::

    from repro import Session, ExecutionPolicy, build_scenario
    from repro.workloads import paper_query

    scenario = build_scenario(target="Excel", h=8, scale=0.01, seed=3)
    with Session(scenario.database, scenario.mappings, links=scenario.links,
                 policy=ExecutionPolicy(method="o-sharing")) as session:
        result = session.query(paper_query("Q1", scenario.target_schema))
        again = session.query(paper_query("Q1", scenario.target_schema),
                              method="e-mqo")   # per-call override
        print(session.stats.snapshot())

``query()`` answers one query, ``query_many()`` a workload with shared
execution, ``top_k()`` ranked answers, ``explain()`` the optimizer's
reasoning, and ``serve()`` is the serving loop: it consumes a request stream
and yields results while every cache stays warm.  Sessions are thread-safe —
concurrent ``query()`` calls share the lock-guarded plan cache, optimizer
memo and pools.

Answers are byte-identical to the one-shot API (the differential harness
asserts warm-vs-cold parity for every evaluator × engine); only the work
performed shrinks as the session warms up.
"""

from __future__ import annotations

import logging
import threading
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from time import perf_counter
from typing import Any, Iterable, Iterator, Sequence

from repro.core.evaluators import EVALUATORS, SharedState
from repro.core.evaluators.base import EvaluationResult
from repro.core.evaluators.batch import BatchEvaluator, BatchResult
from repro.core.evaluators.topk import TopKEvaluator
from repro.core.links import SchemaLinks
from repro.core.target_query import TargetQuery
from repro.obs import MetricsRegistry, MetricsSnapshot, Tracer
from repro.obs.trace import activate
from repro.policy import TOP_K_METHOD, ExecutionPolicy, check_applicable
from repro.relational.database import Database
from repro.relational.plancache import PlanCache
from repro.relational.stats import ExecutionStats

#: The serving loop's slow-query log writes here (see ``slow_query_seconds``).
logger = logging.getLogger("repro.session")


@dataclass(frozen=True)
class SessionStats:
    """Aggregate effectiveness counters across a session's lifetime.

    ``totals`` is a point-in-time *copy* of the cumulative
    :class:`ExecutionStats` of every call the session served (later calls do
    not mutate a snapshot you hold); ``plan_cache`` is a point-in-time
    snapshot of the session-owned cache (hits, misses, evictions,
    invalidations, hit rate, operators saved).  Build one via
    :attr:`Session.stats`.
    """

    #: single queries served (``query``/``top_k``/``serve`` items)
    queries: int
    #: workloads served (``query_many`` calls)
    workloads: int
    #: cumulative execution statistics across every call
    totals: ExecutionStats
    #: session plan-cache snapshot (see :class:`~repro.relational.plancache.PlanCacheStats`)
    plan_cache: dict[str, Any]
    #: entries currently memoized by the session optimizer
    optimizer_memo_entries: int
    #: worker pools the session has actually started (lazily)
    pools_started: int
    #: plan-cache entries delta-patched in place by writes (kept warm)
    entries_patched: int = 0
    #: plan-cache entries dropped by write/replace invalidation
    entries_invalidated: int = 0
    #: statistics-catalog entries refreshed from an append delta instead of
    #: a full profiling pass
    stats_refreshed_incrementally: int = 0

    @property
    def source_operators(self) -> int:
        """Source operators executed across the session lifetime."""
        return self.totals.source_operators

    @property
    def operators_saved(self) -> int:
        """Operators cache hits avoided executing, session-wide."""
        return self.totals.operators_saved

    @property
    def plan_cache_hit_rate(self) -> float:
        """Fraction of plan-cache probes answered without execution."""
        return float(self.plan_cache.get("hit_rate", 0.0))

    def snapshot(self) -> dict[str, Any]:
        """A plain-dict summary (reports, logging, benchmark tables)."""
        return {
            "queries": self.queries,
            "workloads": self.workloads,
            "source_queries": self.totals.source_queries,
            "source_operators": self.totals.source_operators,
            "reformulations": self.totals.reformulations,
            "operators_saved": self.totals.operators_saved,
            "plans_optimized": self.totals.plans_optimized,
            "optimizer_memo_hits": self.totals.optimizer_memo_hits,
            "optimizer_memo_entries": self.optimizer_memo_entries,
            "plan_cache": dict(self.plan_cache),
            "plan_cache_hit_rate": self.plan_cache_hit_rate,
            "entries_patched": self.entries_patched,
            "entries_invalidated": self.entries_invalidated,
            "stats_refreshed_incrementally": self.stats_refreshed_incrementally,
            "pools_started": self.pools_started,
            "seconds": self.totals.total_seconds,
        }


class Session:
    """A persistent connection to one ``(database, mappings)`` pair.

    Parameters
    ----------
    database:
        The source instance ``D`` queries execute against.
    mappings:
        The possible mappings (a :class:`~repro.matching.mappings.MappingSet`).
    links:
        Optional source-schema join links shared by all reformulations.
    policy:
        The default :class:`ExecutionPolicy`; every call accepts keyword
        overrides (``session.query(q, method="e-mqo", engine="row")``)
        validated exactly like the policy itself.
    pools:
        Optional :class:`~repro.relational.parallel.PoolManager` to run the
        parallel engine's workers on.  Default: a private, session-owned
        manager whose pools start lazily and are shut down by
        :meth:`close`.  Pass
        :func:`repro.relational.parallel.default_manager` to share the
        process-wide pools instead (the legacy one-shot shims do this so a
        loop of deprecated calls keeps reusing warm worker pools); shared
        managers are left running on ``close()``.

    Sessions are context managers; :meth:`close` is idempotent and detaches
    the plan cache and shuts the worker pools down.  All cross-query state is
    invalidation-safe *and* delta-aware: replacing a relation wholesale
    through :meth:`~repro.relational.database.Database.set_relation` drops
    exactly the dependent plan-cache entries, while the incremental write API
    (:meth:`~repro.relational.database.Database.append_rows` /
    ``update_rows`` / ``delete_rows``) publishes
    :class:`~repro.relational.relation.Delta` records that *patch* cached
    plans, indexes, shard layouts and column statistics in place whenever the
    delta admits it — so a warm session survives interleaved writes without
    going cold.  :attr:`stats` reports ``entries_patched`` /
    ``entries_invalidated`` / ``stats_refreshed_incrementally`` so the saving
    is observable.
    """

    def __init__(
        self,
        database: Database,
        mappings,
        links: SchemaLinks | None = None,
        policy: ExecutionPolicy | None = None,
        pools=None,
    ):
        policy = _validated_policy(policy)
        from repro.relational.optimizer import Optimizer
        from repro.relational.parallel import InflightComputations, PoolManager

        self.database = database
        self.mappings = mappings
        self.links = links
        self.policy = policy
        #: the session plan cache: one bounded LRU shared by every call
        self.plan_cache = PlanCache(maxsize=policy.cache_size)
        self.plan_cache.attach(database)
        #: the session optimizer: fingerprint memo + statistics catalog
        self.optimizer = Optimizer(database)
        #: compute-once registry shared by concurrent calls
        self.inflight = InflightComputations()
        #: worker pools (session-owned and lazily started unless injected)
        self._owns_pools = pools is None
        self.pools = PoolManager() if pools is None else pools
        #: per-query span trees when ``policy.trace`` is on (``None`` keeps
        #: every instrumented call site on its strict no-op path)
        self.tracer = Tracer() if policy.trace else None
        #: the session :class:`~repro.obs.metrics.MetricsRegistry`; read it
        #: through :meth:`metrics`, which syncs the legacy absolute counters
        #: into the registry before snapshotting
        self.metrics_registry = MetricsRegistry(enabled=policy.metrics)
        # Queue depth is a read-through gauge: it used to be sampled only
        # inside metrics(), so a scrape that snapshotted the registry
        # directly between metrics() calls read a stale depth.  The callback
        # makes every collection (ours or a serving front end's) observe the
        # live pool queues.
        self.metrics_registry.gauge(
            "repro_pool_queue_depth",
            "Tasks submitted to the session worker pools but not yet running.",
        ).set_callback(self.pools.queue_depth)
        #: the most recent requests :meth:`serve` flagged as slow (bounded)
        self.slow_queries: deque[dict[str, Any]] = deque(maxlen=128)
        self._shared = SharedState(
            plan_cache=self.plan_cache,
            optimizer=self.optimizer,
            inflight=self.inflight,
            pools=self.pools,
            database=database,
            tracer=self.tracer,
        )
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        self._active = 0
        self._totals = ExecutionStats()
        self._queries = 0
        self._workloads = 0
        self._closed = False
        self._released = False

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Release the session's resources (idempotent).

        New serving calls raise ``RuntimeError`` immediately; calls already
        in flight are **drained** — close blocks until they finish, so a
        concurrent ``close()`` can never yank the worker pools out from
        under a running parallel query.  Then the plan cache is detached
        from the database's invalidation hooks and every worker pool the
        session started is shut down.  Statistics stay readable after
        closing.
        """
        with self._lock:
            self._closed = True
            # Every closer waits for the drain, so "close() returned"
            # always means "no call is in flight and resources are
            # released" — a second concurrent close() must not return
            # early while the first is still draining.
            while self._active:
                self._idle.wait()
            if self._released:
                return
            self._released = True
            self.plan_cache.detach(self.database)
            if self._owns_pools:
                self.pools.shutdown()

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has run."""
        return self._closed

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @contextmanager
    def _serving(self) -> Iterator[None]:
        """Mark one serving call in flight (close() drains these)."""
        with self._lock:
            if self._closed:
                raise RuntimeError("session is closed")
            self._active += 1
        try:
            yield
        finally:
            with self._lock:
                self._active -= 1
                if not self._active:
                    self._idle.notify_all()

    @contextmanager
    def _traced(self, name: str, **attributes: Any) -> Iterator[None]:
        """A root session span + the ambient tracer, when tracing is on.

        ``activate`` makes the tracer ambient for the calling thread so the
        deep layers (phase timers, operator counters, kernels) record onto
        it; worker threads re-activate it themselves via the pool
        propagation in :func:`repro.relational.parallel.run_tasks`.
        """
        if self.tracer is None:
            yield
            return
        with activate(self.tracer), self.tracer.span(name, **attributes):
            yield

    # ------------------------------------------------------------------ #
    # serving calls
    # ------------------------------------------------------------------ #
    def query(self, query: TargetQuery, **overrides: Any) -> EvaluationResult:
        """Evaluate one probabilistic query under the session policy.

        ``overrides`` are per-call policy changes (``method=``, ``engine=``,
        ``optimize=``, ...), validated eagerly with did-you-mean errors.
        Returns the same :class:`EvaluationResult` the one-shot API returns —
        byte-identical answers, served through the session's warm caches.

        Two budget conveniences route to the anytime evaluator: ``budget=``
        (a :class:`~repro.anytime.budget.Budget` or a dict of its fields)
        and ``budget_ms=`` (shorthand for ``budget=Budget(wall_ms=...)``).
        Either one implies ``method="anytime"`` unless a method is chosen
        explicitly, and the returned
        :class:`~repro.anytime.progress.AnytimeResult` carries per-tuple
        probability intervals plus a ``resume()`` handle whose refinement
        steps keep feeding this session's statistics and metrics.
        """
        with self._serving():
            policy = self._resolve(self._budgeted(overrides))
            if policy.method == TOP_K_METHOD:
                return self._run_top_k(query, policy)
            with self._traced(
                "session.query",
                query=query.name,
                method=policy.method,
                engine=policy.engine,
            ):
                evaluator = EVALUATORS[policy.method](
                    links=self.links, shared=self._shared, **policy.evaluator_options()
                )
                if policy.method == "batch":
                    # A batch evaluation of one query keeps its planning-phase
                    # counters on the workload-level stats; record those so the
                    # session lifetime totals stay complete.
                    batch = evaluator.evaluate_many(
                        [query], self.mappings, self.database
                    )
                    self._record(batch.stats, queries=1)
                    return batch.results[0]
                result = evaluator.evaluate(query, self.mappings, self.database)
                self._record(result.stats, queries=1)
                if policy.method == "anytime":
                    self._observe_anytime(result)
                return result

    def query_many(
        self, queries: Sequence[TargetQuery], **overrides: Any
    ) -> BatchResult:
        """Evaluate a workload with shared execution through the session cache.

        One MQO global plan covers the workload and the *session-owned* plan
        cache serves (and keeps) every shared materialization — a repeated
        workload's second pass reports plan-cache hits and executes strictly
        fewer source operators than its first.
        """
        with self._serving():
            policy = self._resolve(overrides, method="batch")
            with self._traced(
                "session.workload", queries=len(queries), engine=policy.engine
            ):
                evaluator = BatchEvaluator(
                    links=self.links,
                    shared=self._shared,
                    **policy.evaluator_options("batch"),
                )
                batch = evaluator.evaluate_many(queries, self.mappings, self.database)
                self._record(batch.stats, workloads=1)
                return batch

    def top_k(
        self, query: TargetQuery, k: int | None = None, **overrides: Any
    ) -> EvaluationResult:
        """Evaluate a probabilistic top-k query (Section VII).

        ``k`` defaults to the policy's ``k``; one of the two must be set.
        """
        with self._serving():
            if k is not None:
                overrides = {**overrides, "k": k}
            policy = self._resolve(overrides, method=TOP_K_METHOD)
            return self._run_top_k(query, policy)

    def _budgeted(self, overrides: dict[str, Any]) -> dict[str, Any]:
        """Normalise the ``budget=``/``budget_ms=`` conveniences of query().

        ``budget_ms`` becomes ``budget=Budget(wall_ms=...)``; either budget
        form implies ``method="anytime"`` when no method was chosen (the
        anytime evaluator is the only one that reads a budget, and
        ``check_applicable`` would rightly reject the pair otherwise).
        """
        if "budget_ms" in overrides:
            if overrides.get("budget") is not None:
                raise ValueError("pass budget= or budget_ms=, not both")
            from repro.anytime.budget import Budget

            overrides = dict(overrides)
            overrides["budget"] = Budget(wall_ms=overrides.pop("budget_ms"))
        if (
            overrides.get("budget") is not None
            and "method" not in overrides
            and self.policy.method != "anytime"
        ):
            overrides = {**overrides, "method": "anytime"}
        return overrides

    def _observe_anytime(self, result, resumed: bool = False) -> None:
        """Wire one anytime result into the session's obs surfaces.

        The result's continuation reports back here on every ``resume()``
        step, so refinement work done through the handle keeps the session
        lifetime totals, gauges and exhaustion counters honest.
        """
        continuation = getattr(result, "continuation", None)
        if continuation is not None:
            continuation.observer = self._anytime_resumed
        registry = self.metrics_registry
        if not registry.enabled:
            return
        registry.counter(
            "repro_anytime_resumes_total" if resumed else "repro_anytime_queries_total",
            "Anytime resume() refinement steps served."
            if resumed
            else "Anytime queries the session served.",
        ).inc()
        registry.gauge(
            "repro_anytime_unexplored_mass",
            "Unexplored probability mass after the most recent anytime drive.",
        ).set(result.unexplored_mass)
        if not result.exhausted:
            registry.counter(
                "repro_anytime_budget_exhausted_total",
                "Anytime drives stopped by their budget before the frontier drained.",
            ).inc()

    def _anytime_resumed(self, step_stats: ExecutionStats, result) -> None:
        """Continuation callback: account one resume() step to the session."""
        self._record(step_stats)
        self._observe_anytime(result, resumed=True)

    def _resolve(
        self, overrides: dict[str, Any], method: str | None = None
    ) -> ExecutionPolicy:
        """The effective per-call policy (validated like the policy itself).

        ``cache_size`` sizes the *session-owned* plan cache, fixed when the
        session is created — a per-call attempt to change it would be
        silently ignored, so it is rejected instead.  Likewise an explicit
        override the effective ``method`` would ignore (``strategy`` on a
        batch call, say) is rejected, not dropped.
        """
        if (
            "cache_size" in overrides
            and overrides["cache_size"] != self.policy.cache_size
        ):
            raise ValueError(
                "cache_size sizes the session-owned plan cache and is fixed "
                "when the session is created; open the session with "
                f"ExecutionPolicy(cache_size={overrides['cache_size']}) instead"
            )
        # Same story for the observability wiring: the tracer and metrics
        # registry are constructed with the session, so a per-call attempt to
        # toggle them would be silently ignored — reject it instead.
        for fixed in ("trace", "metrics"):
            if fixed in overrides and overrides[fixed] != getattr(self.policy, fixed):
                raise ValueError(
                    f"{fixed} wires the session-owned observability state and "
                    "is fixed when the session is created; open the session "
                    f"with ExecutionPolicy({fixed}={overrides[fixed]}) instead"
                )
        explicit = overrides.get("method")
        if (
            method is not None
            and explicit is not None
            and str(explicit).lower() != method
        ):
            raise ValueError(
                f"method override {explicit!r} does not apply here: this "
                f"call always runs {method!r} (use session.query for a "
                "per-call method choice)"
            )
        policy = self.policy.with_overrides(**overrides)
        effective = method if method is not None else policy.method
        check_applicable(effective, (name for name in overrides if name != "method"))
        return policy

    def _run_top_k(self, query: TargetQuery, policy: ExecutionPolicy) -> EvaluationResult:
        if policy.k is None:
            raise ValueError(
                "top-k needs k: pass session.top_k(query, k=10) or set "
                "ExecutionPolicy(k=10)"
            )
        with self._traced(
            "session.top_k", query=query.name, k=policy.k, engine=policy.engine
        ):
            evaluator = TopKEvaluator(
                k=policy.k,
                links=self.links,
                shared=self._shared,
                **policy.evaluator_options(TOP_K_METHOD),
            )
            result = evaluator.evaluate(query, self.mappings, self.database)
            self._record(result.stats, queries=1)
            return result

    def serve(
        self, requests: Iterable[TargetQuery | tuple[TargetQuery, dict]]
    ) -> Iterator[EvaluationResult]:
        """The serving loop: answer a stream of requests on warm caches.

        ``requests`` yields target queries, or ``(query, overrides)`` pairs
        for per-request policy changes.  Results are yielded in request
        order as they complete; the stream may be unbounded (a generator
        draining a network queue, for instance) — the session never buffers
        more than the request in flight::

            for result in session.serve(request_stream()):
                respond(result.answers)

        Every request is timed end to end (the ``repro_request_seconds``
        histogram when metrics are on), and a request slower than the
        policy's ``slow_query_seconds`` threshold is appended to
        :attr:`slow_queries` (a bounded deque) and logged as a warning on
        the ``repro.session`` logger.
        """
        threshold = self.policy.slow_query_seconds
        for request in requests:
            if isinstance(request, tuple):
                query, overrides = request
                overrides = dict(overrides)
            else:
                query, overrides = request, {}
            started = perf_counter()
            result = self.query(query, **overrides)
            elapsed = perf_counter() - started
            self._observe_request(query, elapsed, threshold)
            yield result

    def _observe_request(
        self, query: TargetQuery, elapsed: float, threshold: float | None
    ) -> None:
        """Record one served request's end-to-end timing (serve loop only)."""
        registry = self.metrics_registry
        if registry.enabled:
            registry.histogram(
                "repro_request_seconds",
                "End-to-end wall-clock of requests answered by serve().",
            ).observe(elapsed)
        if threshold is None or elapsed < threshold:
            return
        self.slow_queries.append(
            {
                "query": query.name,
                "seconds": round(elapsed, 6),
                "threshold": threshold,
            }
        )
        if registry.enabled:
            registry.counter(
                "repro_slow_queries_total",
                "Served requests slower than slow_query_seconds.",
            ).inc()
        logger.warning(
            "slow query %s: %.1f ms (threshold %.1f ms)",
            query.name,
            elapsed * 1000,
            threshold * 1000,
        )

    def explain(
        self, query: TargetQuery, mapping_index: int = 0, analyze: bool = False
    ) -> str:
        """What the optimizer does to ``query``'s reformulated source plan.

        Reformulates the query under the ``mapping_index``-th possible
        mapping (0 = most probable) and renders the logical plan, the
        optimized plan and estimated vs actual rows — through the *session*
        optimizer, so the memo and statistics it warms benefit later calls.
        ``analyze=True`` additionally annotates every executed node with its
        measured wall-clock (inclusive of children) and reports total
        execution time.
        """
        with self._serving():
            from repro.core.reformulation import reformulate_query
            from repro.relational.optimizer import explain as explain_plan

            plan = reformulate_query(query, self.mappings[mapping_index], self.links)
            return explain_plan(
                plan,
                self.database,
                optimizer=self.optimizer,
                engine=self.policy.engine,
                analyze=analyze,
            )

    # ------------------------------------------------------------------ #
    # statistics
    # ------------------------------------------------------------------ #
    def _record(self, stats: ExecutionStats, queries: int = 0, workloads: int = 0) -> None:
        with self._lock:
            self._totals.merge(stats)
            self._queries += queries
            self._workloads += workloads
        registry = self.metrics_registry
        if not registry.enabled:
            return
        for stage, seconds in stats.phase_seconds.items():
            registry.histogram(
                "repro_stage_seconds",
                "Per-call wall-clock of each execution stage.",
                labels={"stage": stage},
            ).observe(seconds)
        registry.histogram(
            "repro_call_seconds",
            "End-to-end wall-clock of serving calls.",
            labels={"kind": "workload" if workloads else "query"},
        ).observe(stats.total_seconds)
        if queries:
            registry.counter(
                "repro_queries_total", "Single queries the session served."
            ).inc(queries)
        if workloads:
            registry.counter(
                "repro_workloads_total", "Workloads (query_many calls) served."
            ).inc(workloads)

    @property
    def stats(self) -> SessionStats:
        """Aggregate hit rates and operators saved across the session lifetime."""
        totals = ExecutionStats()
        with self._lock:
            # Copy under the lock: a snapshot must not alias the live
            # accumulator (held snapshots would mutate retroactively, and a
            # concurrent _record() could be observed half-merged).
            totals.merge(self._totals)
            queries = self._queries
            workloads = self._workloads
        # The delta counters accrue on the session-owned caches (writes
        # arrive through Database hooks, not through evaluator calls), so
        # they are promoted into the snapshot copy — via the cache's *locked*
        # snapshot, so a concurrent hit can never be observed half-recorded
        # (hits incremented, operators_saved not yet).
        cache = self.plan_cache.stats_snapshot()
        totals.entries_patched = cache["patches"]
        totals.entries_invalidated = cache["invalidations"]
        totals.stats_refreshed_incrementally = (
            self.database.stats_catalog.incremental_refreshes
        )
        return SessionStats(
            queries=queries,
            workloads=workloads,
            totals=totals,
            plan_cache=cache,
            optimizer_memo_entries=len(self.optimizer),
            pools_started=self.pools.started_pools,
            entries_patched=totals.entries_patched,
            entries_invalidated=totals.entries_invalidated,
            stats_refreshed_incrementally=totals.stats_refreshed_incrementally,
        )

    def metrics(self) -> MetricsSnapshot:
        """A point-in-time :class:`~repro.obs.metrics.MetricsSnapshot`.

        Before snapshotting, the legacy absolute counters (plan cache,
        lifetime totals, pools, optimizer memo) are mirrored into the
        registry via ``set_total``/``set`` — the engine's own counters stay
        the source of truth and nothing is double-counted.  The snapshot
        renders to JSON (``to_json()``) and Prometheus text format
        (``to_prometheus()``); with ``policy.metrics`` off it is empty and
        flagged ``enabled=False``.
        """
        registry = self.metrics_registry
        if not registry.enabled:
            return registry.snapshot()
        cache = self.plan_cache.stats_snapshot()
        with self._lock:
            source_queries = self._totals.source_queries
            source_operators = self._totals.source_operators
            reformulations = self._totals.reformulations
            plans_optimized = self._totals.plans_optimized
            memo_hits = self._totals.optimizer_memo_hits
            eunits_created = self._totals.eunits_created
            eunits_pruned = self._totals.eunits_pruned
            mappings_evaluated = self._totals.mappings_evaluated
        counter, gauge = registry.counter, registry.gauge
        counter(
            "repro_plan_cache_lookups_total",
            "Plan-cache probes, by outcome.",
            labels={"outcome": "hit"},
        ).set_total(cache["hits"])
        counter(
            "repro_plan_cache_lookups_total",
            "Plan-cache probes, by outcome.",
            labels={"outcome": "miss"},
        ).set_total(cache["misses"])
        counter(
            "repro_plan_cache_evictions_total", "Plan-cache LRU evictions."
        ).set_total(cache["evictions"])
        counter(
            "repro_plan_cache_invalidations_total",
            "Plan-cache entries dropped by write invalidation.",
        ).set_total(cache["invalidations"])
        counter(
            "repro_plan_cache_patches_total",
            "Plan-cache entries delta-patched in place by writes.",
        ).set_total(cache["patches"])
        counter(
            "repro_operators_saved_total",
            "Source operators cache hits avoided executing.",
        ).set_total(cache["operators_saved"])
        gauge(
            "repro_plan_cache_entries", "Entries currently cached."
        ).set(cache["entries"])
        gauge(
            "repro_plan_cache_hit_rate",
            "Fraction of plan-cache probes answered without execution.",
        ).set(cache["hit_rate"])
        counter(
            "repro_source_queries_total", "Source queries executed."
        ).set_total(source_queries)
        counter(
            "repro_source_operators_total", "Source operators executed."
        ).set_total(source_operators)
        counter(
            "repro_reformulations_total", "Query reformulations performed."
        ).set_total(reformulations)
        counter(
            "repro_plans_optimized_total", "Plans run through the optimizer."
        ).set_total(plans_optimized)
        counter(
            "repro_optimizer_memo_hits_total", "Optimizer memo hits."
        ).set_total(memo_hits)
        counter(
            "repro_eunits_created_total",
            "E-units created in u-traces (o-sharing/top-k/anytime).",
        ).set_total(eunits_created)
        counter(
            "repro_eunits_pruned_total",
            "E-units discarded through the empty-intermediate shortcut.",
        ).set_total(eunits_pruned)
        counter(
            "repro_mappings_evaluated_total",
            "Mappings carried by created e-units (anytime progress signal).",
        ).set_total(mappings_evaluated)
        gauge(
            "repro_optimizer_memo_entries", "Plans currently memoized."
        ).set(len(self.optimizer))
        counter(
            "repro_stats_incremental_refreshes_total",
            "Statistics-catalog entries refreshed from an append delta.",
        ).set_total(self.database.stats_catalog.incremental_refreshes)
        # repro_pool_queue_depth is registered as a read-through gauge in
        # __init__ (its callback samples the pools at collection time), so
        # there is nothing to sync here.
        gauge(
            "repro_pools_started", "Worker pools the session has started."
        ).set(self.pools.started_pools)
        return registry.snapshot()

    @property
    def stats_catalog(self):
        """The (lazy, version-keyed) statistics catalog the optimizer reads."""
        return self.database.stats_catalog

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self._closed else "open"
        return (
            f"Session({self.database!r}, mappings={getattr(self.mappings, 'size', '?')}, "
            f"method={self.policy.method!r}, {state})"
        )


def _validated_policy(policy: ExecutionPolicy | None) -> ExecutionPolicy:
    """Shared type boundary of :class:`Session` and :func:`connect`."""
    if policy is None:
        return ExecutionPolicy()
    if not isinstance(policy, ExecutionPolicy):
        raise ValueError(
            "policy must be an ExecutionPolicy "
            f"(got {type(policy).__name__}); build one with "
            "ExecutionPolicy(method=..., engine=...) or pass keyword "
            "overrides to the individual calls"
        )
    return policy


def connect(
    scenario,
    policy: ExecutionPolicy | None = None,
    pools=None,
    **overrides: Any,
) -> Session:
    """Open a :class:`Session` on a scenario (or any scenario-shaped object).

    ``scenario`` needs ``database``, ``mappings`` and (optionally) ``links``
    attributes — a :class:`~repro.datagen.scenario.MatchingScenario` fits.
    ``pools`` forwards to :class:`Session` (pass
    :func:`repro.relational.parallel.default_manager` to share the
    process-wide worker pools).  Keyword overrides configure the policy in
    place::

        with repro.connect(scenario, method="e-mqo", engine="parallel") as s:
            result = s.query(query)
    """
    base = _validated_policy(policy)
    return Session(
        scenario.database,
        scenario.mappings,
        links=getattr(scenario, "links", None),
        # Session-level configuration, not a per-call override: fields set
        # here are defaults for whichever later calls read them.
        policy=base.with_defaults(**overrides),
        pools=pools,
    )
