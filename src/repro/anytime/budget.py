"""Evaluation budgets for the anytime evaluator.

A :class:`Budget` bounds how much of the u-trace one anytime drive may
explore.  Two of the limits are **deterministic** — they count work in units
the evaluator charges identically on every run (representative mappings
evaluated, e-units created) — so budgeted results are replayable byte for
byte and CI can gate on them.  ``wall_ms`` is the best-effort wall-clock
limit the serving story needs; it is checked at the same checkpoints as the
deterministic limits (between operator executions), never mid-operator, and
is deliberately **not** accepted over the serving wire because a wall-clock
cut is not reproducible under :func:`~repro.serving.tenants.serial_replay`.

The :class:`BudgetMeter` is the per-drive accountant: the scheduler asks it
``would_exceed`` *before* popping a frontier task and charges it *after* the
task's operator actually executed, so an exhausted budget stops the drive at
a checkpoint with the frontier intact (resumable), and exact-mode code paths
never construct a meter at all when no budget is set.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from time import perf_counter
from typing import Any, Mapping

__all__ = ["Budget", "BudgetMeter"]

_LIMIT_FIELDS = ("mapping_limit", "eunit_limit", "wall_ms")


@dataclass(frozen=True)
class Budget:
    """Bounds for one anytime drive (all limits optional).

    Attributes
    ----------
    mapping_limit:
        Maximum number of representative mappings whose operator executions
        the drive may charge (an executed partition group charges one per
        mapping it carries).  Deterministic.
    eunit_limit:
        Maximum number of child e-units the drive may create.  Deterministic.
    wall_ms:
        Best-effort wall-clock limit in milliseconds, checked between
        operator executions only.  Not deterministic; refused over the
        serving wire.

    A budget with every limit ``None`` is *unbounded*: the anytime evaluator
    then explores the full u-trace and returns exact answers byte-identical
    to o-sharing.
    """

    mapping_limit: int | None = None
    eunit_limit: int | None = None
    wall_ms: float | None = None

    def __post_init__(self) -> None:
        for name in ("mapping_limit", "eunit_limit"):
            value = getattr(self, name)
            if value is None:
                continue
            if not isinstance(value, int) or isinstance(value, bool) or value < 0:
                raise ValueError(
                    f"{name} must be a non-negative int (or None), got {value!r}"
                )
        if self.wall_ms is not None:
            if (
                not isinstance(self.wall_ms, (int, float))
                or isinstance(self.wall_ms, bool)
                or self.wall_ms <= 0
            ):
                raise ValueError(
                    f"wall_ms must be a positive number (or None), got {self.wall_ms!r}"
                )

    # ------------------------------------------------------------------ #
    @classmethod
    def from_spec(cls, spec: "Budget | Mapping[str, Any]") -> "Budget":
        """Build a budget from a mapping (``{"mapping_limit": 100}``).

        Unknown keys raise a ``ValueError`` with a did-you-mean suggestion —
        the same boundary behaviour :class:`~repro.policy.ExecutionPolicy`
        applies to its own fields, because budget specs arrive from the same
        loosely-typed places (per-call overrides, the serving wire).
        """
        if isinstance(spec, cls):
            return spec
        if not isinstance(spec, Mapping):
            raise ValueError(
                "budget must be a Budget or a mapping of its fields "
                f"({', '.join(_LIMIT_FIELDS)}), got {type(spec).__name__}"
            )
        from repro.policy import suggest

        unknown = [name for name in spec if name not in _LIMIT_FIELDS]
        if unknown:
            name = unknown[0]
            raise ValueError(
                f"unknown budget field {name!r}{suggest(name, _LIMIT_FIELDS)} "
                f"(valid fields: {sorted(_LIMIT_FIELDS)})"
            )
        return cls(**dict(spec))

    @property
    def unbounded(self) -> bool:
        """True when no limit is set (exact-mode behaviour)."""
        return (
            self.mapping_limit is None
            and self.eunit_limit is None
            and self.wall_ms is None
        )

    def describe(self) -> dict[str, Any]:
        """A JSON-safe rendering (policy describe(), serving payloads)."""
        return {
            "mapping_limit": self.mapping_limit,
            "eunit_limit": self.eunit_limit,
            "wall_ms": self.wall_ms,
        }

    def capped(self, mapping_limit: int) -> "Budget":
        """A copy whose ``mapping_limit`` is at most ``mapping_limit``.

        The serving layer applies a tenant's ``mapping_budget_cap`` with
        this: an absent or larger requested limit is clamped down, a smaller
        one is kept.  Deterministic, so capped requests replay byte-identically.
        """
        if self.mapping_limit is not None and self.mapping_limit <= mapping_limit:
            return self
        return replace(self, mapping_limit=mapping_limit)

    def meter(self) -> "BudgetMeter":
        """A fresh accountant for one drive (wall-clock starts now)."""
        return BudgetMeter(self)


class BudgetMeter:
    """Charges one drive's work against a :class:`Budget`."""

    def __init__(self, budget: Budget):
        self.budget = budget
        self.mappings_charged = 0
        self.eunits_charged = 0
        self._started = perf_counter() if budget.wall_ms is not None else None

    def would_exceed(self, mappings: int, eunits: int) -> bool:
        """True when charging this much would break a deterministic limit."""
        budget = self.budget
        if (
            budget.mapping_limit is not None
            and self.mappings_charged + mappings > budget.mapping_limit
        ):
            return True
        return (
            budget.eunit_limit is not None
            and self.eunits_charged + eunits > budget.eunit_limit
        )

    def expired(self) -> bool:
        """True once the best-effort wall-clock limit has elapsed."""
        if self._started is None:
            return False
        return (perf_counter() - self._started) * 1000.0 >= self.budget.wall_ms

    def charge(self, mappings: int, eunits: int) -> None:
        """Record work actually performed (after the operator executed)."""
        self.mappings_charged += mappings
        self.eunits_charged += eunits

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BudgetMeter(mappings={self.mappings_charged}, "
            f"eunits={self.eunits_charged}, budget={self.budget.describe()})"
        )
