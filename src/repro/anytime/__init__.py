"""Anytime evaluation: budgeted queries with sound probability intervals.

This subsystem generalizes the paper's top-k bound machinery (Section VII)
into a full anytime mode, ``method="anytime"``:

* :mod:`repro.anytime.budget` — :class:`Budget` /:class:`BudgetMeter`:
  deterministic mapping/e-unit limits (CI-gateable, replayable) plus a
  best-effort wall-clock limit, checkpointed between operator executions;
* :mod:`repro.anytime.progress` — :class:`IntervalAnswer`,
  :class:`ProgressState` (the priority frontier + contribution log) and
  :class:`AnytimeResult` with its :meth:`~AnytimeResult.resume` handle;
* :mod:`repro.core.evaluators.anytime` — the evaluator itself, registered in
  the :data:`~repro.core.evaluators.EVALUATORS` registry.

The headline invariant (ARCHITECTURE.md invariant 11): with no budget (or
an unreachable one) the anytime evaluator is **byte-identical** to exact
o-sharing; under any deterministic budget the returned intervals always
contain the exact probabilities and tighten monotonically across
``resume()`` steps.
"""

from repro.anytime.budget import Budget, BudgetMeter
from repro.anytime.progress import (
    AnytimeContinuation,
    AnytimeResult,
    FrontierTask,
    IntervalAnswer,
    ProgressState,
)

__all__ = [
    "Budget",
    "BudgetMeter",
    "AnytimeContinuation",
    "AnytimeResult",
    "FrontierTask",
    "IntervalAnswer",
    "ProgressState",
]
