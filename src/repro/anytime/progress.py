"""The anytime progress model: interval answers over a priority frontier.

The o-sharing evaluator (Algorithm 2) explores the u-trace depth-first and
only has an answer once the whole tree is settled.  The top-k evaluator
(Algorithm 4) already shows the tree can be expanded *partially* while every
answer tuple carries sound probability bounds.  This module generalizes that
observation into a reusable progress model:

* a **frontier** of pending partition groups, popped in decreasing
  probability mass (``heapq`` on ``(-mass, seq)`` — ``seq`` is a
  deterministic insertion counter, so ties break first-in-first-out and the
  schedule is replayable);
* a **contribution log** — every settled e-unit records either its answer
  tuples or its empty mass, tagged with a *replay key* that encodes where in
  o-sharing's depth-first traversal the same contribution would have landed;
* **interval answers** — at any checkpoint, each discovered tuple ``t`` has
  ``lb(t)`` = mass already confirmed and ``ub(t) = lb(t) + U`` where ``U``
  (the *unexplored mass*) is the total mass still sitting on the frontier.
  ``lb ≤ Pr(t) ≤ ub`` holds throughout and both bounds tighten monotonically
  as the frontier drains.

Replay keys are what make the headline invariant cheap to state: when the
frontier drains completely, replaying the contribution log in key order
performs *exactly* the sequence of ``add_tuples``/``add_empty`` calls
o-sharing's recursion performs — same floats, same accumulation order, same
tuple insertion order — so an unbudgeted anytime result is byte-identical to
the exact o-sharing result, not merely tolerance-equal.

The key scheme: a unit explored under prefix ``k`` that expands into
partition groups ``0..g-1`` gives group ``i`` the *empty key*
``k + ((0, i),)`` (used when the group's reformulation is unmatched — in
o-sharing those ``add_empty`` calls happen during the expand loop, before
any child recursion) and the *child prefix* ``k + ((1, i),)`` (all of the
child subtree's events follow the expand loop, in group order).  A settled
unit contributes under its own prefix.  Lexicographic tuple order over these
keys is exactly o-sharing's depth-first event order.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from repro.core.answer import ProbabilisticAnswer, _sort_key
from repro.core.evaluators.base import EvaluationResult
from repro.relational.stats import ExecutionStats

__all__ = [
    "IntervalAnswer",
    "FrontierTask",
    "ProgressState",
    "AnytimeResult",
    "AnytimeContinuation",
]

#: Replay keys are tuples of (lane, index) pairs; the lanes order a unit's
#: expand-time empty contributions (lane 0) before its child subtrees (lane 1).
_EMPTY_LANE = 0
_CHILD_LANE = 1


@dataclass(frozen=True)
class IntervalAnswer:
    """One answer tuple with its current probability interval.

    ``lb`` is probability mass already confirmed for the tuple; ``ub`` adds
    the drive's unexplored mass (every pending frontier task could still
    produce this tuple).  The exact probability always lies in ``[lb, ub]``,
    and successive checkpoints only ever raise ``lb`` and lower ``ub``.
    """

    values: tuple
    lb: float
    ub: float

    @property
    def width(self) -> float:
        """The interval's remaining uncertainty."""
        return self.ub - self.lb


@dataclass
class FrontierTask:
    """One pending partition group: the unit of anytime scheduling.

    Processing the task reformulates the group's representative mapping for
    the parent unit's chosen operator, executes the source plan once for the
    whole group (the o-sharing saving), and either settles as an unmatched
    empty contribution or spawns the child e-unit and schedules it.
    """

    parent_key: tuple
    index: int
    unit: Any  # the parent EUnit
    choice: Any  # the OperatorChoice the group belongs to
    group: tuple
    mass: float

    @property
    def empty_key(self) -> tuple:
        """Replay key when the group's reformulation is unmatched."""
        return self.parent_key + ((_EMPTY_LANE, self.index),)

    @property
    def child_key(self) -> tuple:
        """Replay prefix of the spawned child's subtree."""
        return self.parent_key + ((_CHILD_LANE, self.index),)


class ProgressState:
    """Contribution log + priority frontier of one anytime evaluation.

    The state survives between drives: a budget-stopped drive leaves the
    frontier intact and a later :meth:`AnytimeResult.resume` keeps draining
    it, so no operator execution is ever repeated across checkpoints.
    """

    def __init__(self) -> None:
        #: (replay_key, answer_tuples | None, probability) triples
        self._contributions: list[tuple[tuple, list | None, float]] = []
        self._frontier: list[tuple[float, int, FrontierTask]] = []
        self._seq = 0
        #: trace counters already folded into ExecutionStats (delta recording
        #: across resume steps; see AnytimeEvaluator._finalize)
        self.trace_recorded: dict[str, int] = {}

    # ------------------------------------------------------------------ #
    # frontier
    # ------------------------------------------------------------------ #
    def push(self, parent_key: tuple, index: int, unit, choice, group) -> None:
        """Schedule one partition group (priority: decreasing mass, FIFO ties)."""
        mass = sum(mapping.probability for mapping in group)
        task = FrontierTask(
            parent_key=parent_key,
            index=index,
            unit=unit,
            choice=choice,
            group=tuple(group),
            mass=mass,
        )
        heapq.heappush(self._frontier, (-mass, self._seq, task))
        self._seq += 1

    def peek(self) -> FrontierTask | None:
        """The highest-mass pending task (``None`` when drained)."""
        if not self._frontier:
            return None
        return self._frontier[0][2]

    def pop(self) -> FrontierTask:
        """Remove and return the highest-mass pending task."""
        return heapq.heappop(self._frontier)[2]

    @property
    def exhausted(self) -> bool:
        """True once the frontier is drained (the result is exact)."""
        return not self._frontier

    @property
    def pending_tasks(self) -> int:
        """Number of partition groups still on the frontier."""
        return len(self._frontier)

    def unexplored_mass(self) -> float:
        """Total probability mass still on the frontier.

        Summed in insertion (``seq``) order, not heap order, so the float is
        identical for identical schedules — budgeted results stay
        deterministic and replayable.
        """
        return sum(
            entry[2].mass for entry in sorted(self._frontier, key=lambda e: e[1])
        )

    # ------------------------------------------------------------------ #
    # contributions
    # ------------------------------------------------------------------ #
    def contribute_tuples(self, key: tuple, tuples: Iterable, probability: float) -> None:
        """Record a settled unit's answer tuples (shared group mass)."""
        self._contributions.append((key, list(tuples), probability))

    def contribute_empty(self, key: tuple, probability: float) -> None:
        """Record mass whose source query produced no tuple."""
        self._contributions.append((key, None, probability))

    def replay(self) -> ProbabilisticAnswer:
        """The contribution log folded in o-sharing's depth-first order.

        Sorting by replay key reproduces the exact sequence of
        ``add_tuples``/``add_empty`` calls the o-sharing recursion performs,
        so when the frontier is drained the result is byte-identical to the
        exact evaluator — and a partial (budgeted) answer is the exact
        answer's prefix restricted to settled mass, with the same
        deterministic accumulation order.
        """
        answers = ProbabilisticAnswer()
        for _key, tuples, probability in sorted(
            self._contributions, key=lambda entry: entry[0]
        ):
            if tuples is None:
                answers.add_empty(probability)
            else:
                answers.add_tuples(tuples, probability)
        return answers

    def intervals(
        self, answers: ProbabilisticAnswer, unexplored: float
    ) -> tuple[IntervalAnswer, ...]:
        """Ranked interval answers (decreasing ``lb``, canonical tie-break)."""
        ranked = sorted(
            (
                IntervalAnswer(values=values, lb=lb, ub=lb + unexplored)
                for values, lb in answers.items()
            ),
            key=lambda interval: (-interval.lb, _sort_key(interval.values)),
        )
        return tuple(ranked)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ProgressState(contributions={len(self._contributions)}, "
            f"pending={len(self._frontier)})"
        )


def ranking_converged(
    intervals: tuple[IntervalAnswer, ...], unexplored: float, exhausted: bool
) -> bool:
    """True when no unexplored mass can change the ranked order.

    An exhausted drive is exact, hence converged.  Otherwise the ranking is
    final when consecutive intervals are strictly separated (``lb_i >
    ub_{i+1}``, so ``Pr(t_i) ≥ lb_i > ub_{i+1} ≥ Pr(t_{i+1})``) *and* the
    unexplored mass cannot introduce an unseen tuple that displaces the last
    ranked one (``U < lb_last ≤ Pr(t_last)``) — strict inequalities, so the
    exact ranking provably lists the same tuples in the same order.
    """
    if exhausted:
        return True
    if not intervals:
        return unexplored <= 0.0
    for first, second in zip(intervals, intervals[1:]):
        if first.lb <= second.ub:
            return False
    return unexplored < intervals[-1].lb


@dataclass
class AnytimeResult(EvaluationResult):
    """An :class:`EvaluationResult` with interval answers and a resume handle.

    ``answers`` holds each discovered tuple at its **lower bound** (for an
    unbudgeted or drained drive that *is* the exact probability, byte for
    byte); ``intervals`` carries the per-tuple ``[lb, ub]`` bounds ranked by
    decreasing ``lb``; ``unexplored_mass`` is the frontier mass the budget
    left unsettled; ``exhausted`` flags a drained (exact) frontier and
    ``converged`` that the ranked order provably matches the exact ranking.
    ``stats`` is cumulative across the initial drive and every ``resume``.
    """

    intervals: tuple[IntervalAnswer, ...] = ()
    unexplored_mass: float = 0.0
    exhausted: bool = True
    converged: bool = True
    continuation: Any = field(default=None, repr=False)

    def interval_for(self, values: Iterable) -> IntervalAnswer:
        """The interval of one answer tuple (unseen tuples get ``[0, U]``)."""
        key = tuple(values)
        for interval in self.intervals:
            if interval.values == key:
                return interval
        return IntervalAnswer(values=key, lb=0.0, ub=self.unexplored_mass)

    def resume(self, budget=None, budget_ms: float | None = None) -> "AnytimeResult":
        """Continue tightening from the saved frontier under a fresh budget.

        With no budget the drive runs to exhaustion — the returned result is
        then byte-identical to the exact o-sharing answer.  Raises
        ``RuntimeError`` when the frontier is stale (a relation was written
        since) or when the result carries no continuation.
        """
        if self.continuation is None:
            raise RuntimeError(
                "this AnytimeResult carries no continuation to resume "
                "(it was built without a saved frontier)"
            )
        return self.continuation.resume(budget=budget, budget_ms=budget_ms)


class AnytimeContinuation:
    """The saved frontier of one anytime evaluation, resumable in-session.

    Holds everything a later drive needs — the progress state, the u-trace
    bookkeeping, the cumulative statistics — plus a snapshot of the
    database's relation version tokens: the frontier's materialized
    intermediates embed source data, so resuming after *any* write would
    silently mix old and new data.  Staleness is therefore a hard error.

    ``observer`` (optional) is called with ``(step_stats, result)`` after
    every resumed drive; a :class:`~repro.session.Session` installs one so
    resumed work lands in the session's lifetime totals and metrics exactly
    once.
    """

    def __init__(self, evaluator, query, database, state: ProgressState, trace):
        self.evaluator = evaluator
        self.query = query
        self.database = database
        self.state = state
        self.trace = trace
        #: cumulative ExecutionStats across the initial drive and all resumes
        self.totals = ExecutionStats()
        #: set by the evaluator at evaluate() time; survives every resume
        self.representative_mappings = 0
        self.versions = self._versions()
        self.observer: Callable[[ExecutionStats, "AnytimeResult"], None] | None = None

    def _versions(self) -> dict[str, int]:
        return {
            name: self.database.relation(name).version
            for name in self.database.relation_names
        }

    def check_fresh(self) -> None:
        """Raise when any relation changed since the frontier was saved."""
        current = self._versions()
        if current == self.versions:
            return
        changed = sorted(
            name
            for name in set(current) | set(self.versions)
            if current.get(name) != self.versions.get(name)
        )
        raise RuntimeError(
            "anytime continuation is stale: relation(s) "
            f"{', '.join(changed)} changed since the frontier was saved; "
            "re-run the query instead of resuming"
        )

    def resume(self, budget=None, budget_ms: float | None = None) -> "AnytimeResult":
        from repro.anytime.budget import Budget

        self.check_fresh()
        if budget is not None and budget_ms is not None:
            raise ValueError(
                "pass either budget= or budget_ms=, not both "
                "(budget_ms is shorthand for Budget(wall_ms=...))"
            )
        if budget_ms is not None:
            budget = Budget(wall_ms=budget_ms)
        elif budget is None:
            budget = Budget()
        else:
            budget = Budget.from_spec(budget)
        return self.evaluator.resume(self, budget)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AnytimeContinuation(query={self.query.name!r}, "
            f"pending={self.state.pending_tasks})"
        )
