"""Multi-tenant asyncio serving front end over persistent sessions.

The package turns the session API (:class:`repro.session.Session`) into a
network service without changing a single answer byte:

* :mod:`~repro.serving.protocol` — the versioned JSON-lines wire protocol
  (requests, structured errors, deterministic result payloads, canonical
  frame encoding);
* :mod:`~repro.serving.tenants` — named tenants: one session + policy
  defaults + query catalog + admission quota each, and the synchronous
  per-tenant executor the determinism story rests on;
* :mod:`~repro.serving.server` — the asyncio TCP server: bounded per-tenant
  admission queues, load shedding with Retry-After hints, one sequential
  worker per tenant, graceful drain, merged ``/metrics``;
* :mod:`~repro.serving.client` — a pipelining JSON-lines client used by the
  tests, the load benchmark and the docs examples.

The pinned invariant (ARCHITECTURE.md): serving N tenants concurrently is
**byte-identical** to running each tenant's admitted requests serially on an
isolated session — :func:`~repro.serving.tenants.serial_replay` is the
reference implementation of that statement, and ``tests/serving/`` plus
``benchmarks/bench_serving_load.py`` gate it.
"""

from repro.serving.client import ServingClient
from repro.serving.protocol import (
    MAX_FRAME_BYTES,
    OPS,
    PROTOCOL_VERSION,
    SERVER_OPS,
    TENANT_OPS,
    WRITE_OPS,
    ProtocolError,
    encode_response,
    error_response,
    ok_response,
    parse_request,
)
from repro.serving.server import ReproServer
from repro.serving.tenants import (
    Tenant,
    TenantQuota,
    TenantRegistry,
    TenantSpec,
    serial_replay,
)

__all__ = [
    "MAX_FRAME_BYTES",
    "OPS",
    "PROTOCOL_VERSION",
    "SERVER_OPS",
    "TENANT_OPS",
    "WRITE_OPS",
    "ProtocolError",
    "ReproServer",
    "ServingClient",
    "Tenant",
    "TenantQuota",
    "TenantRegistry",
    "TenantSpec",
    "encode_response",
    "error_response",
    "ok_response",
    "parse_request",
    "serial_replay",
]
