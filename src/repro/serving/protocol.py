"""The serving wire protocol: versioned JSON-lines request/response frames.

One request per line, one response per line.  Responses are **not** ordered —
a connection may pipeline requests to several tenants and each tenant worker
answers at its own pace — so every request carries a client-chosen ``id``
that the response echoes back.  The envelope is deliberately tiny::

    → {"op": "query", "id": 7, "tenant": "excel", "query": "Q1",
       "overrides": {"method": "e-mqo"}}
    ← {"id": 7, "ok": true, "tenant": "excel", "seq": 3,
       "result": {...}, "v": 1}

    → {"op": "query", "id": 8, "tenant": "excel", "query": "Q99"}
    ← {"id": 8, "ok": false, "tenant": "excel", "seq": 4, "error":
       {"code": "unknown-query", "message": "..."}, "v": 1}

``seq`` is the per-tenant execution sequence number: replaying a tenant's
requests in ``seq`` order through an isolated session produces byte-identical
response frames (the serving invariant, gated by ``tests/serving/`` and
``benchmarks/bench_serving_load.py``).  To keep that byte-identity meaningful
the result payloads contain only deterministic values — ranked answers,
probabilities and operator/cache counters; wall-clock lives in ``/metrics``,
never in a response body.

Every malformed input maps onto a structured :class:`ProtocolError` (with the
same did-you-mean texts the :class:`~repro.policy.ExecutionPolicy` boundary
produces) — a client can always ``json.loads`` what comes back, whatever it
sent.
"""

from __future__ import annotations

import json
from typing import Any

from repro.policy import suggest

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "OPS",
    "TENANT_OPS",
    "SERVER_OPS",
    "WRITE_OPS",
    "ProtocolError",
    "parse_request",
    "ok_response",
    "error_response",
    "encode_response",
    "answer_payload",
    "result_payload",
    "batch_payload",
    "stats_payload",
]

#: Wire protocol version; requests may pin it via ``"v"`` (optional).
PROTOCOL_VERSION = 1

#: Upper bound of one request frame (a line, newline included).  Oversized
#: frames are refused with a structured ``bad-frame`` error — an unbounded
#: line would otherwise buffer without limit server-side.
MAX_FRAME_BYTES = 1 << 20

#: Write operations, mapped 1:1 onto the delta-aware
#: :class:`~repro.relational.database.Database` write API (plus the wholesale
#: ``set_relation`` path).
WRITE_OPS = ("append_rows", "update_rows", "delete_rows", "set_relation")

#: Operations addressed to one tenant (these require ``"tenant"`` and run
#: through that tenant's admission queue, in admission order).
TENANT_OPS = ("query", "query_many", "top_k", "explain", "stats") + WRITE_OPS

#: Operations answered by the server itself, out of band of any tenant queue.
SERVER_OPS = ("metrics", "healthz", "tenants", "drain")

#: Every operation the protocol knows.
OPS = TENANT_OPS + SERVER_OPS


class ProtocolError(Exception):
    """A structured request failure: an error ``code`` plus a message.

    ``retry_after_seconds`` is set on load-shed refusals (the client should
    back off at least that long before retrying); ``request_id`` carries the
    offending request's ``id`` when it could still be extracted, so the error
    response can be matched to its request.
    """

    def __init__(
        self,
        code: str,
        message: str,
        retry_after_seconds: float | None = None,
        request_id: Any = None,
    ):
        super().__init__(message)
        self.code = code
        self.message = message
        self.retry_after_seconds = retry_after_seconds
        self.request_id = request_id

    def payload(self) -> dict[str, Any]:
        """The ``error`` object of an error response."""
        payload: dict[str, Any] = {"code": self.code, "message": self.message}
        if self.retry_after_seconds is not None:
            payload["retry_after_seconds"] = self.retry_after_seconds
        return payload


def _jsonable(value: Any) -> Any:
    """JSON scalar/containers pass through; anything else renders as str."""
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    return str(value)


# --------------------------------------------------------------------------- #
# request parsing
# --------------------------------------------------------------------------- #
def parse_request(line: str) -> dict[str, Any]:
    """One wire line → a validated request dict (or :class:`ProtocolError`).

    Validates the *envelope* only (frame size, JSON shape, protocol version,
    op name, id shape, tenant presence); op-specific fields (``query``,
    ``rows``, ``overrides``...) are validated by the tenant executing the
    request, so their errors carry the tenant's did-you-mean context.
    """
    if len(line.encode("utf-8", errors="replace")) > MAX_FRAME_BYTES:
        raise ProtocolError(
            "bad-frame",
            f"request frame exceeds {MAX_FRAME_BYTES} bytes",
        )
    text = line.strip()
    if not text:
        raise ProtocolError("bad-frame", "empty request frame")
    try:
        request = json.loads(text)
    except ValueError as err:
        raise ProtocolError("bad-frame", f"invalid JSON: {err}") from None
    if not isinstance(request, dict):
        raise ProtocolError(
            "bad-request",
            f"a request must be a JSON object, got {type(request).__name__}",
        )
    request_id = request.get("id")
    if request_id is not None and not isinstance(request_id, (str, int, float)):
        raise ProtocolError(
            "bad-request",
            "request id must be a JSON scalar (string or number)",
        )
    version = request.get("v", PROTOCOL_VERSION)
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            "bad-request",
            f"unsupported protocol version {version!r} "
            f"(this server speaks v{PROTOCOL_VERSION})",
            request_id=request_id,
        )
    op = request.get("op")
    if op is None:
        raise ProtocolError(
            "bad-request",
            f"request has no \"op\" (valid ops: {sorted(OPS)})",
            request_id=request_id,
        )
    if not isinstance(op, str):
        raise ProtocolError(
            "bad-request",
            f"op must be a string naming one of {sorted(OPS)}, got {op!r}",
            request_id=request_id,
        )
    op_key = op.lower()
    if op_key not in OPS:
        raise ProtocolError(
            "unknown-op",
            f"unknown op {op!r}{suggest(op, OPS)} (valid ops: {sorted(OPS)})",
            request_id=request_id,
        )
    if op_key in TENANT_OPS:
        tenant = request.get("tenant")
        if not isinstance(tenant, str) or not tenant:
            raise ProtocolError(
                "bad-request",
                f"op {op_key!r} requires a \"tenant\" (a non-empty string)",
                request_id=request_id,
            )
    normalized = dict(request)
    normalized["op"] = op_key
    return normalized


# --------------------------------------------------------------------------- #
# response envelopes
# --------------------------------------------------------------------------- #
def ok_response(
    request_id: Any,
    result: dict[str, Any],
    tenant: str | None = None,
    seq: int | None = None,
) -> dict[str, Any]:
    """A success envelope (``seq`` set on tenant-executed requests)."""
    response: dict[str, Any] = {
        "id": request_id,
        "ok": True,
        "result": result,
        "v": PROTOCOL_VERSION,
    }
    if tenant is not None:
        response["tenant"] = tenant
    if seq is not None:
        response["seq"] = seq
    return response


def error_response(
    request_id: Any,
    error: ProtocolError,
    tenant: str | None = None,
    seq: int | None = None,
) -> dict[str, Any]:
    """A failure envelope carrying the structured error payload."""
    if request_id is None:
        request_id = error.request_id
    response: dict[str, Any] = {
        "id": request_id,
        "ok": False,
        "error": error.payload(),
        "v": PROTOCOL_VERSION,
    }
    if tenant is not None:
        response["tenant"] = tenant
    if seq is not None:
        response["seq"] = seq
    return response


def encode_response(response: dict[str, Any]) -> bytes:
    """Canonical frame bytes: sorted keys, compact separators, one ``\\n``.

    This is *the* serialization both the live server and the serial-replay
    harness use, so "byte-identical responses" is a statement about actual
    frames, not about parsed dictionaries.
    """
    return (
        json.dumps(_jsonable(response), sort_keys=True, separators=(",", ":")).encode(
            "utf-8"
        )
        + b"\n"
    )


# --------------------------------------------------------------------------- #
# result payloads (deterministic by construction)
# --------------------------------------------------------------------------- #
def answer_payload(answers) -> dict[str, Any]:
    """A :class:`~repro.core.answer.ProbabilisticAnswer` in rank order.

    ``ranked()`` sorts by decreasing probability with a total tie-break, so
    the payload is independent of tuple insertion order — the one part of an
    answer that may legitimately vary with evaluation strategy.
    """
    return {
        "tuples": [
            {
                "rank": ranked.rank,
                "values": list(ranked.values),
                "probability": ranked.probability,
            }
            for ranked in answers.ranked()
        ],
        "empty_probability": answers.empty_probability,
    }


def _counters(stats) -> dict[str, Any]:
    """The deterministic counters of one ExecutionStats (no wall-clock)."""
    return {
        "source_queries": stats.source_queries,
        "source_operators": stats.source_operators,
        "reformulations": stats.reformulations,
        "plan_cache_hits": stats.plan_cache_hits,
        "plan_cache_misses": stats.plan_cache_misses,
        "operators_saved": stats.operators_saved,
        "rows_scanned": stats.rows_scanned,
    }


def result_payload(result) -> dict[str, Any]:
    """One :class:`~repro.core.evaluators.base.EvaluationResult` on the wire.

    An anytime result (the ``budget`` request field routes to
    ``method="anytime"``) additionally carries its interval section: per-tuple
    ``[lb, ub]`` bounds, the global unexplored mass and the
    ``exhausted``/``converged`` flags.  All of it is deterministic under the
    wire-admissible (mapping/e-unit) budgets, so budgeted responses stay
    inside the serial-replay byte-identity envelope.
    """
    payload = {
        "evaluator": result.evaluator,
        "query": result.query.name,
        "answers": answer_payload(result.answers),
        "counters": _counters(result.stats),
    }
    intervals = getattr(result, "intervals", None)
    if intervals is not None:
        payload["anytime"] = {
            "intervals": [
                {"values": list(iv.values), "lb": iv.lb, "ub": iv.ub}
                for iv in intervals
            ],
            "unexplored_mass": result.unexplored_mass,
            "exhausted": result.exhausted,
            "converged": result.converged,
        }
    return payload


def batch_payload(batch) -> dict[str, Any]:
    """One :class:`~repro.core.evaluators.batch.BatchResult` on the wire."""
    return {
        "results": [result_payload(result) for result in batch.results],
        "counters": _counters(batch.stats),
    }


def stats_payload(stats) -> dict[str, Any]:
    """A :class:`~repro.session.SessionStats` snapshot, wall-clock excluded.

    Everything else in the snapshot is a deterministic counter, so the
    ``stats`` op stays inside the byte-identity envelope; per-request and
    per-stage wall-clock is served by ``/metrics`` instead.
    """
    snapshot = stats.snapshot()
    snapshot.pop("seconds", None)
    return snapshot
