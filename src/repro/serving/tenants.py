"""Named tenants: one :class:`~repro.session.Session` each, plus quotas.

A tenant is the serving unit of isolation.  Its :class:`TenantSpec` binds a
name to a ``(database, mappings, links)`` triple, an
:class:`~repro.policy.ExecutionPolicy` of per-tenant defaults, a **query
catalog** (the named :class:`~repro.core.target_query.TargetQuery` plans
clients may invoke — plans never travel over the wire), and a
:class:`TenantQuota` bounding how much of the server one tenant may occupy.

:class:`Tenant` is deliberately synchronous: :meth:`Tenant.execute` maps one
parsed request onto the session/database API and returns a complete response
envelope, assigning the per-tenant ``seq`` number under a lock.  The asyncio
server drives it from a worker thread (one logical worker per tenant, so a
tenant's requests execute in admission order); tests and the serial-replay
harness drive it directly, with no sockets or event loop in sight — which is
exactly what makes "concurrent serving is byte-identical to a serial replay"
a checkable statement (:func:`serial_replay`).
"""

from __future__ import annotations

import logging
import re
import threading
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Iterator, Mapping, Sequence

from repro.obs.trace import activate
from repro.policy import ExecutionPolicy, suggest
from repro.serving.protocol import (
    ProtocolError,
    batch_payload,
    encode_response,
    error_response,
    ok_response,
    result_payload,
    stats_payload,
)
from repro.session import Session

__all__ = [
    "TenantQuota",
    "TenantSpec",
    "Tenant",
    "TenantRegistry",
    "serial_replay",
]

#: The serving layer's slow-request log writes here, tenant label included.
logger = logging.getLogger("repro.serving")

#: Tenant names become metric label values and span names; keep them boring.
_NAME = re.compile(r"^[A-Za-z0-9_.-]+$")


@dataclass(frozen=True)
class TenantQuota:
    """Admission-control bounds for one tenant.

    ``queue_limit`` bounds the tenant's pending-request queue: an arriving
    request that finds the queue full is **load-shed** with a structured
    ``overloaded`` refusal carrying ``retry_after_seconds`` (the
    ``Retry-After`` hint) — the server never buffers a tenant without bound
    and one hot tenant cannot starve the others' queues.  ``max_batch``
    bounds how many queries a single ``query_many`` request may carry.

    ``mapping_budget_cap`` clamps the ``mapping_limit`` of any anytime
    ``budget`` a request carries (absent or larger requested limits are
    capped down, smaller ones kept) — a tenant allowed only bounded anytime
    work cannot request an unbounded drive.  The cap is deterministic, so
    capped requests still replay byte-identically.
    """

    queue_limit: int = 16
    max_batch: int = 64
    retry_after_seconds: float = 0.05
    mapping_budget_cap: int | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.queue_limit, int) or self.queue_limit <= 0:
            raise ValueError(
                f"queue_limit must be a positive int, got {self.queue_limit!r}"
            )
        if not isinstance(self.max_batch, int) or self.max_batch <= 0:
            raise ValueError(
                f"max_batch must be a positive int, got {self.max_batch!r}"
            )
        if self.retry_after_seconds <= 0:
            raise ValueError(
                "retry_after_seconds must be a positive number, "
                f"got {self.retry_after_seconds!r}"
            )
        if self.mapping_budget_cap is not None and (
            not isinstance(self.mapping_budget_cap, int)
            or isinstance(self.mapping_budget_cap, bool)
            or self.mapping_budget_cap < 0
        ):
            raise ValueError(
                "mapping_budget_cap must be a non-negative int (or None), "
                f"got {self.mapping_budget_cap!r}"
            )

    def describe(self) -> dict[str, Any]:
        return {
            "queue_limit": self.queue_limit,
            "max_batch": self.max_batch,
            "retry_after_seconds": self.retry_after_seconds,
            "mapping_budget_cap": self.mapping_budget_cap,
        }


@dataclass
class TenantSpec:
    """Everything needed to build (and rebuild) one tenant.

    A spec is intentionally re-instantiable: the serial-replay harness builds
    a *fresh* tenant from the same spec to check byte-identity, so specs for
    replayed tenants should be constructed from deterministic builders (a
    scenario factory), not from already-mutated live objects.
    """

    name: str
    database: Any
    mappings: Any
    links: Any = None
    policy: ExecutionPolicy | None = None
    #: name → :class:`~repro.core.target_query.TargetQuery` clients may run
    catalog: dict[str, Any] = field(default_factory=dict)
    quota: TenantQuota = field(default_factory=TenantQuota)

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not _NAME.match(self.name):
            raise ValueError(
                "tenant name must match [A-Za-z0-9_.-]+ "
                f"(it becomes a metric label), got {self.name!r}"
            )
        if not self.catalog:
            raise ValueError(
                f"tenant {self.name!r} needs a non-empty query catalog "
                "(clients invoke queries by name; plans never cross the wire)"
            )

    @classmethod
    def from_scenario(
        cls,
        name: str,
        scenario,
        policy: ExecutionPolicy | None = None,
        catalog: Mapping[str, Any] | None = None,
        quota: TenantQuota | None = None,
    ) -> "TenantSpec":
        """A spec over a scenario-shaped object (``database``/``mappings``).

        With no explicit ``catalog`` the tenant serves the Table III paper
        queries defined on the scenario's target schema.
        """
        if catalog is None:
            from repro.workloads.queries import queries_for_target

            schema = scenario.target_schema
            catalog = {
                spec.query_id: spec.build(schema)
                for spec in queries_for_target(schema.name)
            }
        return cls(
            name=name,
            database=scenario.database,
            mappings=scenario.mappings,
            links=getattr(scenario, "links", None),
            policy=policy,
            catalog=dict(catalog),
            quota=quota if quota is not None else TenantQuota(),
        )


class Tenant:
    """One live tenant: a session, its catalog, and the request dispatcher.

    ``metrics`` (optional) is the *server-level*
    :class:`~repro.obs.metrics.MetricsRegistry`: request latency and
    slow-request counters land there under a ``tenant`` label, while the
    session's own registry stays tenant-agnostic (the server injects the
    tenant label when merging ``/metrics``).
    """

    def __init__(self, spec: TenantSpec, metrics=None):
        self.spec = spec
        self.name = spec.name
        self.quota = spec.quota
        self.catalog = dict(spec.catalog)
        self.session = Session(
            spec.database, spec.mappings, links=spec.links, policy=spec.policy
        )
        self._metrics = metrics
        self._lock = threading.Lock()
        self._seq = 0
        #: recent slow requests (bounded), mirroring ``Session.slow_queries``
        #: but carrying the tenant and op labels the serving layer knows
        self.slow_requests: deque[dict[str, Any]] = deque(maxlen=128)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    @property
    def database(self):
        return self.session.database

    def close(self) -> None:
        """Drain and close the tenant's session (idempotent)."""
        self.session.close()

    def describe(self) -> dict[str, Any]:
        """The ``tenants`` op's view of this tenant."""
        policy = self.session.policy
        return {
            "name": self.name,
            "queries": sorted(self.catalog),
            "relations": sorted(self.database.relation_names),
            "quota": self.quota.describe(),
            "policy": policy.describe(),
            "closed": self.session.closed,
        }

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def execute(self, request: dict[str, Any]) -> dict[str, Any]:
        """Run one admitted request to completion; never raises.

        Requests execute strictly one at a time per tenant (the lock) and
        receive the per-tenant ``seq`` in that order — the order a serial
        replay must follow to reproduce every response byte.  All failures,
        expected or not, come back as structured error envelopes.
        """
        request_id = request.get("id")
        op = request.get("op")
        started = perf_counter()
        with self._lock:
            self._seq += 1
            seq = self._seq
            try:
                result = self._dispatch(op, request)
                response = ok_response(request_id, result, tenant=self.name, seq=seq)
            except ProtocolError as err:
                response = error_response(request_id, err, tenant=self.name, seq=seq)
            except Exception as err:  # noqa: BLE001 - the wire never sees a traceback
                internal = ProtocolError(
                    "internal", f"{type(err).__name__}: {err}"
                )
                response = error_response(
                    request_id, internal, tenant=self.name, seq=seq
                )
        self._observe(op, request, perf_counter() - started, response)
        return response

    def _dispatch(self, op: str, request: dict[str, Any]) -> dict[str, Any]:
        handler = getattr(self, f"_op_{op}", None)
        if handler is None:
            raise ProtocolError(
                "unknown-op", f"op {op!r} is not a tenant operation"
            )
        if self.session.closed and op != "stats":
            # stats stay readable after close() — everything else is refused
            # with the session's documented error, structured for the wire.
            raise ProtocolError("closed", "session is closed")
        with self._span(op, request):
            return handler(request)

    @contextmanager
    def _span(self, op: str, request: dict[str, Any]) -> Iterator[None]:
        """The ``serve:<tenant>`` root span every traced request nests under."""
        tracer = self.session.tracer
        if tracer is None:
            yield
            return
        attributes = {"op": op}
        query = request.get("query")
        if isinstance(query, str):
            attributes["query"] = query
        with activate(tracer), tracer.span(f"serve:{self.name}", **attributes):
            yield

    # ------------------------------------------------------------------ #
    # op handlers (raise ProtocolError for anything the wire got wrong)
    # ------------------------------------------------------------------ #
    def _op_query(self, request) -> dict[str, Any]:
        query = self._catalog_query(request.get("query"))
        overrides = self._overrides(request)
        budget = self._budget(request)
        if budget is not None:
            overrides["budget"] = budget
        result = self._session_call(
            lambda: self.session.query(query, **overrides)
        )
        return result_payload(result)

    def _op_query_many(self, request) -> dict[str, Any]:
        names = request.get("queries")
        if not isinstance(names, list) or not names:
            raise ProtocolError(
                "bad-request", 'query_many requires "queries": a non-empty list'
            )
        if len(names) > self.quota.max_batch:
            raise ProtocolError(
                "bad-request",
                f"batch of {len(names)} queries exceeds tenant "
                f"{self.name!r} quota max_batch={self.quota.max_batch}",
            )
        self._no_budget(request, "query_many")
        queries = [self._catalog_query(name) for name in names]
        overrides = self._overrides(request)
        batch = self._session_call(
            lambda: self.session.query_many(queries, **overrides)
        )
        return batch_payload(batch)

    def _op_top_k(self, request) -> dict[str, Any]:
        query = self._catalog_query(request.get("query"))
        self._no_budget(request, "top_k")
        k = request.get("k")
        if k is not None and (not isinstance(k, int) or isinstance(k, bool)):
            raise ProtocolError(
                "bad-request", f"k must be a positive integer, got {k!r}"
            )
        overrides = self._overrides(request)
        result = self._session_call(
            lambda: self.session.top_k(query, k=k, **overrides)
        )
        return result_payload(result)

    def _op_explain(self, request) -> dict[str, Any]:
        query = self._catalog_query(request.get("query"))
        mapping_index = request.get("mapping_index", 0)
        if not isinstance(mapping_index, int) or isinstance(mapping_index, bool):
            raise ProtocolError(
                "bad-request",
                f"mapping_index must be an integer, got {mapping_index!r}",
            )
        analyze = bool(request.get("analyze", False))
        text = self._session_call(
            lambda: self.session.explain(
                query, mapping_index=mapping_index, analyze=analyze
            )
        )
        return {"query": query.name, "text": text}

    def _op_stats(self, request) -> dict[str, Any]:
        return stats_payload(self.session.stats)

    # -- writes: the PR 6 delta API over the wire ----------------------- #
    def _op_append_rows(self, request) -> dict[str, Any]:
        relation, rows = self._write_target(request, rows_required=True)
        delta = self.database.append_rows(relation, rows)
        return self._write_payload("append_rows", relation, len(rows), delta)

    def _op_update_rows(self, request) -> dict[str, Any]:
        relation, rows = self._write_target(request, rows_required=True)
        positions = self._positions(request)
        delta = self.database.update_rows(relation, positions, rows)
        return self._write_payload("update_rows", relation, len(positions), delta)

    def _op_delete_rows(self, request) -> dict[str, Any]:
        relation, _ = self._write_target(request, rows_required=False)
        positions = self._positions(request)
        delta = self.database.delete_rows(relation, positions)
        return self._write_payload("delete_rows", relation, len(positions), delta)

    def _op_set_relation(self, request) -> dict[str, Any]:
        from repro.relational.relation import Relation

        relation, rows = self._write_target(request, rows_required=True)
        columns = self.database.relation(relation).columns
        self.database.set_relation(
            relation, Relation(columns, rows, name=relation)
        )
        return self._write_payload("set_relation", relation, len(rows), None)

    # ------------------------------------------------------------------ #
    # shared request plumbing
    # ------------------------------------------------------------------ #
    def _catalog_query(self, name):
        if not isinstance(name, str):
            raise ProtocolError(
                "bad-request",
                f'a query is named by a string, got {name!r} '
                f"(available: {sorted(self.catalog)})",
            )
        query = self.catalog.get(name)
        if query is None:
            raise ProtocolError(
                "unknown-query",
                f"tenant {self.name!r} has no query {name!r}"
                f"{suggest(name, self.catalog)} "
                f"(available: {sorted(self.catalog)})",
            )
        return query

    def _overrides(self, request) -> dict[str, Any]:
        overrides = request.get("overrides", {})
        if not isinstance(overrides, dict):
            raise ProtocolError(
                "bad-overrides",
                f"overrides must be a JSON object, got {type(overrides).__name__}",
            )
        if any(not isinstance(key, str) for key in overrides):
            raise ProtocolError(
                "bad-overrides", "override names must be strings"
            )
        if "parallel" in overrides:
            raise ProtocolError(
                "bad-overrides",
                "parallel is not wire-configurable (it is a ParallelConfig "
                "object); set it in the tenant's ExecutionPolicy instead",
            )
        for name in ("budget", "budget_ms"):
            if name in overrides:
                raise ProtocolError(
                    "bad-overrides",
                    f"{name} is not an override: pass the top-level "
                    '"budget" request field (validated and quota-capped; '
                    "wall-clock budgets are not wire-admissible)",
                )
        return dict(overrides)

    def _budget(self, request):
        """The request's validated (and quota-capped) anytime budget.

        Only the deterministic limits are wire-admissible: a ``wall_ms``
        budget cut depends on the serving machine's clock, so a budgeted
        response carrying one could never replay byte-identically — it is
        refused here, not silently dropped.  Unknown fields get the same
        did-you-mean ``bad-overrides`` error every policy boundary produces.
        """
        spec = request.get("budget")
        if spec is None:
            return None
        if not isinstance(spec, dict):
            raise ProtocolError(
                "bad-overrides",
                "budget must be a JSON object of Budget fields "
                f"(mapping_limit, eunit_limit), got {type(spec).__name__}",
            )
        if "wall_ms" in spec:
            raise ProtocolError(
                "bad-overrides",
                "wall_ms is not wire-admissible (a wall-clock cut is not "
                "reproducible under serial replay); use mapping_limit or "
                "eunit_limit",
            )
        from repro.anytime.budget import Budget

        try:
            budget = Budget.from_spec(spec)
        except ValueError as err:
            raise ProtocolError("bad-overrides", str(err)) from None
        cap = self.quota.mapping_budget_cap
        if cap is not None:
            budget = budget.capped(cap)
        return budget

    def _no_budget(self, request, op: str) -> None:
        if request.get("budget") is not None:
            raise ProtocolError(
                "bad-overrides",
                f'budget applies to the "query" op only, not {op!r} '
                "(it routes the request to the anytime evaluator)",
            )

    def _session_call(self, call):
        """Run one session call, mapping its ValueErrors onto the wire.

        The session boundary already produces the did-you-mean texts
        (:class:`~repro.policy.ExecutionPolicy` validation); they are
        forwarded verbatim inside a structured ``bad-overrides`` error.
        """
        try:
            return call()
        except ValueError as err:
            raise ProtocolError("bad-overrides", str(err)) from None
        except RuntimeError as err:
            if "closed" in str(err):
                raise ProtocolError("closed", str(err)) from None
            raise

    def _write_target(self, request, rows_required: bool):
        relation = request.get("relation")
        if not isinstance(relation, str) or not relation:
            raise ProtocolError(
                "bad-write", 'a write requires "relation": a non-empty string'
            )
        if not self.database.has_relation(relation):
            raise ProtocolError(
                "bad-write",
                f"tenant {self.name!r} has no relation {relation!r}"
                f"{suggest(relation, self.database.relation_names)} "
                f"(available: {sorted(self.database.relation_names)})",
            )
        rows = request.get("rows")
        if rows is None and not rows_required:
            return relation, []
        if not isinstance(rows, list) or any(
            not isinstance(row, (list, tuple)) for row in rows
        ):
            raise ProtocolError(
                "bad-write", '"rows" must be a list of rows (each a list)'
            )
        return relation, [tuple(row) for row in rows]

    def _positions(self, request) -> Sequence[int]:
        positions = request.get("positions")
        if (
            not isinstance(positions, list)
            or not positions
            or any(
                not isinstance(p, int) or isinstance(p, bool) or p < 0
                for p in positions
            )
        ):
            raise ProtocolError(
                "bad-write",
                '"positions" must be a non-empty list of non-negative integers',
            )
        return positions

    def _write_payload(self, op, relation, rows_affected, delta) -> dict[str, Any]:
        return {
            "op": op,
            "relation": relation,
            "rows_affected": rows_affected,
            # Version tokens are process-global and therefore not wire-safe;
            # the delta *kind* tells the client which invalidation path ran.
            "delta": None if delta is None else delta.kind,
        }

    # ------------------------------------------------------------------ #
    # observation (latency + slow-request log, tenant label attached)
    # ------------------------------------------------------------------ #
    def _observe(self, op, request, elapsed: float, response) -> None:
        if self._metrics is not None and self._metrics.enabled:
            self._metrics.histogram(
                "repro_server_request_seconds",
                "End-to-end wall-clock of tenant-executed requests.",
                labels={"tenant": self.name},
            ).observe(elapsed)
        threshold = self.session.policy.slow_query_seconds
        if threshold is None or elapsed < threshold:
            return
        record = {
            "tenant": self.name,
            "op": op,
            "query": request.get("query"),
            "seconds": round(elapsed, 6),
            "threshold": threshold,
        }
        self.slow_requests.append(record)
        if self._metrics is not None and self._metrics.enabled:
            self._metrics.counter(
                "repro_server_slow_requests_total",
                "Tenant requests slower than the tenant's slow_query_seconds.",
                labels={"tenant": self.name},
            ).inc()
        logger.warning(
            "tenant %s slow request %s (%s): %.1f ms (threshold %.1f ms)",
            self.name,
            op,
            record["query"],
            elapsed * 1000,
            threshold * 1000,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Tenant({self.name!r}, queries={len(self.catalog)}, seq={self._seq})"


class TenantRegistry:
    """The server's name → :class:`Tenant` map (insertion-ordered)."""

    def __init__(self, specs: Sequence[TenantSpec], metrics=None):
        if not specs:
            raise ValueError("a server needs at least one TenantSpec")
        self._tenants: dict[str, Tenant] = {}
        for spec in specs:
            if spec.name in self._tenants:
                raise ValueError(f"duplicate tenant name {spec.name!r}")
            self._tenants[spec.name] = Tenant(spec, metrics=metrics)

    def get(self, name: str) -> Tenant:
        tenant = self._tenants.get(name)
        if tenant is None:
            raise ProtocolError(
                "unknown-tenant",
                f"no tenant named {name!r}{suggest(name, self._tenants)} "
                f"(tenants: {sorted(self._tenants)})",
            )
        return tenant

    def items(self):
        return self._tenants.items()

    @property
    def names(self) -> list[str]:
        return list(self._tenants)

    def close_all(self) -> None:
        """``Session.close()`` every tenant (drains in-flight; idempotent)."""
        for tenant in self._tenants.values():
            tenant.close()

    def __len__(self) -> int:
        return len(self._tenants)

    def __iter__(self) -> Iterator[Tenant]:
        return iter(self._tenants.values())


def serial_replay(spec: TenantSpec, requests: Sequence[dict[str, Any]]) -> list[bytes]:
    """Execute ``requests`` in order on a fresh, isolated tenant.

    This is the reference semantics of the serving invariant: a tenant served
    concurrently (among other tenants, under admission control) must produce
    exactly these frames for the same per-tenant request order.  Callers pass
    the *executed* requests in ``seq`` order (load-shed refusals never reach
    a tenant, so they are not part of the replay).
    """
    tenant = Tenant(spec)
    try:
        return [encode_response(tenant.execute(request)) for request in requests]
    finally:
        tenant.close()
