"""A small asyncio client for the serving protocol (tests, benchmarks, docs).

:class:`ServingClient` pipelines requests over one TCP connection: each
request gets an auto-assigned ``id`` and a future; a background reader task
matches response frames back to their futures by ``id``, so many requests
may be in flight at once (possibly to different tenants) and completion
order does not matter.  The raw response *bytes* of every matched frame are
retained alongside the parsed dict — the byte-identity tests compare those
frames, not re-serializations.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any

from repro.serving.protocol import MAX_FRAME_BYTES, PROTOCOL_VERSION

__all__ = ["ServingClient"]


class ServingClient:
    """One JSON-lines connection to a :class:`~repro.serving.server.ReproServer`.

    Usage::

        client = await ServingClient.connect(*server.address)
        response = await client.request(
            "query", tenant="excel", query="Q1",
            overrides={"method": "e-mqo"},
        )
        assert response["ok"]
        await client.close()
    """

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self._reader = reader
        self._writer = writer
        self._next_id = 0
        self._pending: dict[Any, asyncio.Future] = {}
        #: ``id`` → raw frame bytes of every matched response, as received
        self.frames: dict[Any, bytes] = {}
        #: responses that matched no pending request (``id: null`` errors)
        self._unmatched: list[dict[str, Any]] = []
        self._reader_task = asyncio.ensure_future(self._read_loop())

    @classmethod
    async def connect(cls, host: str, port: int) -> "ServingClient":
        reader, writer = await asyncio.open_connection(
            host, port, limit=MAX_FRAME_BYTES
        )
        return cls(reader, writer)

    # ------------------------------------------------------------------ #
    async def request(self, op: str, **fields: Any) -> dict[str, Any]:
        """Send one request and await its matched response dict."""
        future = await self.send(op, **fields)
        return await future

    async def send(self, op: str, **fields: Any) -> "asyncio.Future[dict]":
        """Fire one request, return the future of its response (pipelining)."""
        self._next_id += 1
        request_id = self._next_id
        request = {"op": op, "id": request_id, "v": PROTOCOL_VERSION, **fields}
        loop = asyncio.get_event_loop()
        future: asyncio.Future = loop.create_future()
        self._pending[request_id] = future
        self._writer.write(json.dumps(request).encode("utf-8") + b"\n")
        await self._writer.drain()
        return future

    async def send_raw(self, payload: bytes) -> None:
        """Write arbitrary bytes (fuzz tests exercise the framing layer)."""
        self._writer.write(payload)
        await self._writer.drain()

    async def read_unmatched(self, timeout: float = 5.0) -> dict[str, Any]:
        """Await the next response that matched no pending request.

        Errors for unparseable frames come back with ``id: null``; fuzz
        tests read them here.
        """
        deadline = asyncio.get_event_loop().time() + timeout
        while True:
            if self._unmatched:
                return self._unmatched.pop(0)
            if asyncio.get_event_loop().time() > deadline:
                raise asyncio.TimeoutError("no unmatched response arrived")
            await asyncio.sleep(0.005)

    # ------------------------------------------------------------------ #
    # convenience wrappers
    # ------------------------------------------------------------------ #
    async def query(self, tenant: str, query: str, **fields) -> dict[str, Any]:
        return await self.request("query", tenant=tenant, query=query, **fields)

    async def top_k(self, tenant: str, query: str, k=None, **fields) -> dict[str, Any]:
        if k is not None:
            fields["k"] = k
        return await self.request("top_k", tenant=tenant, query=query, **fields)

    async def healthz(self) -> dict[str, Any]:
        return await self.request("healthz")

    async def metrics(self) -> str:
        response = await self.request("metrics")
        if not response.get("ok"):
            raise RuntimeError(f"metrics request failed: {response}")
        return response["result"]["text"]

    async def drain(self) -> dict[str, Any]:
        return await self.request("drain")

    # ------------------------------------------------------------------ #
    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                try:
                    response = json.loads(line)
                except ValueError:  # pragma: no cover - server never does this
                    continue
                future = self._pending.pop(response.get("id"), None)
                if future is None:
                    self._unmatched.append(response)
                elif not future.done():
                    self.frames[response.get("id")] = line
                    future.set_result(response)
        except (asyncio.CancelledError, ConnectionResetError):
            pass
        finally:
            closed = ConnectionResetError("connection closed by server")
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(closed)
            self._pending.clear()

    @property
    def connection_open(self) -> bool:
        """False once the server has closed this connection."""
        return not self._reader.at_eof()

    async def close(self) -> None:
        self._reader_task.cancel()
        try:
            await self._reader_task
        except asyncio.CancelledError:
            pass
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except Exception:  # pragma: no cover - peer already gone
            pass
