"""The asyncio TCP front end: admission control, tenant workers, drain.

:class:`ReproServer` listens on a TCP port and speaks the JSON-lines
protocol of :mod:`repro.serving.protocol`.  The concurrency shape is the
whole point:

* the **event loop** owns connections and admission only — it never runs a
  query.  Each arriving tenant request is admitted into that tenant's
  bounded :class:`asyncio.Queue` (size = the tenant's
  :attr:`~repro.serving.tenants.TenantQuota.queue_limit`); a full queue
  load-sheds immediately with a structured ``overloaded`` refusal carrying a
  ``retry_after_seconds`` hint, so one hot tenant saturates its own queue
  and nothing else;
* **one worker task per tenant** drains that queue in admission order and
  executes each request on the shared :data:`~repro.relational.parallel.pool.ROLE_SERVING`
  thread pool (:meth:`~repro.serving.tenants.Tenant.execute` is synchronous
  and lock-guarded).  Per-tenant execution is therefore *sequential* — which
  is what makes concurrent serving byte-identical to a serial replay of each
  tenant's request order — while distinct tenants execute genuinely in
  parallel;
* **drain** (:meth:`ReproServer.drain`) flips admission off (new tenant
  requests get a ``draining`` refusal), lets every already-admitted request
  finish and be answered, then closes every tenant session —
  ``Session.close()`` semantics, extended to the wire.

Server-level operations (``metrics``, ``healthz``, ``tenants``, ``drain``)
bypass the tenant queues; ``metrics`` renders the merged Prometheus text of
the server's own registry plus every tenant session's registry with the
``tenant`` label injected.
"""

from __future__ import annotations

import asyncio
from typing import Any, Sequence

from repro.obs.metrics import MetricsRegistry, MetricsSnapshot
from repro.relational.parallel.pool import ROLE_SERVING, PoolManager
from repro.serving.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    TENANT_OPS,
    encode_response,
    error_response,
    ok_response,
    parse_request,
)
from repro.serving.tenants import TenantRegistry, TenantSpec

__all__ = ["ReproServer"]


class ReproServer:
    """A multi-tenant serving front end over a set of tenant specs.

    Usage (tests and the load benchmark use exactly this shape)::

        server = ReproServer([spec_a, spec_b])
        await server.start()          # binds 127.0.0.1:<ephemeral>
        ...                           # clients connect to server.address
        await server.drain()          # refuse new work, finish in-flight
        await server.close()          # stop listening, close sessions

    ``async with ReproServer(...)`` starts on entry and drains+closes on
    exit.
    """

    def __init__(
        self,
        specs: Sequence[TenantSpec],
        host: str = "127.0.0.1",
        port: int = 0,
        metrics: bool = True,
        pools: PoolManager | None = None,
    ):
        self.metrics_registry = MetricsRegistry(enabled=metrics)
        self.tenants = TenantRegistry(specs, metrics=self.metrics_registry)
        self._host = host
        self._port = port
        self._pools = pools if pools is not None else PoolManager()
        self._owns_pools = pools is None
        self._server: asyncio.AbstractServer | None = None
        self._queues: dict[str, asyncio.Queue] = {}
        self._workers: list[asyncio.Task] = []
        self._draining = False
        self._closed = False
        #: structured refusals issued, per reason (also exported as a metric)
        self.shed_counts: dict[str, int] = {"overloaded": 0, "draining": 0}

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> "ReproServer":
        """Bind the listening socket and launch one worker per tenant."""
        if self._server is not None:
            raise RuntimeError("server already started")
        if self._closed:
            raise RuntimeError("server is closed")
        for name, tenant in self.tenants.items():
            queue: asyncio.Queue = asyncio.Queue(maxsize=tenant.quota.queue_limit)
            self._queues[name] = queue
            # Read-through depth gauge: a /metrics scrape sees the live
            # admission queue, not a value sampled at some earlier request.
            self.metrics_registry.gauge(
                "repro_server_queue_depth",
                "Admitted requests waiting in a tenant's serving queue.",
                labels={"tenant": name},
            ).set_callback(queue.qsize)
            self._workers.append(
                asyncio.ensure_future(self._tenant_worker(name, queue))
            )
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self._host,
            port=self._port,
            limit=MAX_FRAME_BYTES,
        )
        return self

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (port is concrete once started)."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("server is not listening")
        sockname = self._server.sockets[0].getsockname()
        return sockname[0], sockname[1]

    @property
    def draining(self) -> bool:
        return self._draining

    async def drain(self) -> None:
        """Refuse new tenant work, finish everything already admitted.

        Idempotent.  On return every admitted request has been executed and
        its response written, and every tenant session is closed; the socket
        keeps answering server ops (``healthz`` reports ``draining``) until
        :meth:`close`.
        """
        if self._draining:
            return
        # Admission checks run synchronously on the event loop, so after
        # this flag flips no connection handler can enqueue another request:
        # there is no admitted-but-refused or refused-but-admitted window.
        self._draining = True
        for queue in self._queues.values():
            await queue.join()
        loop = asyncio.get_event_loop()
        await loop.run_in_executor(None, self.tenants.close_all)

    async def close(self) -> None:
        """Drain, stop listening, cancel workers, release the pools."""
        if self._closed:
            return
        await self.drain()
        self._closed = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for worker in self._workers:
            worker.cancel()
        for worker in self._workers:
            try:
                await worker
            except asyncio.CancelledError:
                pass
        self._workers.clear()
        if self._owns_pools:
            self._pools.shutdown(wait=False)

    async def __aenter__(self) -> "ReproServer":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # ------------------------------------------------------------------ #
    # connections
    # ------------------------------------------------------------------ #
    async def _handle_connection(self, reader, writer) -> None:
        """One client connection: read frames, admit, let workers answer.

        Responses from tenant workers interleave on this connection in
        completion order (``id`` matches them up); the per-connection lock
        keeps individual frames atomic.
        """
        write_lock = asyncio.Lock()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    # A line longer than the frame bound: refuse and close —
                    # the stream can no longer be framed reliably.
                    await self._send(
                        writer,
                        write_lock,
                        error_response(
                            None,
                            ProtocolError(
                                "bad-frame",
                                f"request frame exceeds {MAX_FRAME_BYTES} bytes",
                            ),
                        ),
                    )
                    break
                if not line:
                    break  # EOF: client went away
                if not line.endswith(b"\n"):
                    # EOF in the middle of a frame: answer the truncation
                    # structurally, then close.
                    await self._send(
                        writer,
                        write_lock,
                        error_response(
                            None,
                            ProtocolError(
                                "bad-frame", "truncated frame (EOF before newline)"
                            ),
                        ),
                    )
                    break
                if not line.strip():
                    continue  # ignore blank keep-alive lines
                await self._handle_frame(line, writer, write_lock)
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:  # pragma: no cover - peer already gone
                pass

    async def _handle_frame(self, line: bytes, writer, write_lock) -> None:
        """Parse one frame and either answer it (server op) or admit it."""
        try:
            request = parse_request(line.decode("utf-8", errors="replace"))
        except ProtocolError as err:
            await self._send(writer, write_lock, error_response(None, err))
            return
        op = request["op"]
        if op in TENANT_OPS:
            await self._admit(request, writer, write_lock)
            return
        # Server ops bypass tenant queues entirely.
        try:
            result = await self._server_op(op, request)
            response = ok_response(request.get("id"), result)
        except ProtocolError as err:
            response = error_response(request.get("id"), err)
        await self._send(writer, write_lock, response)

    async def _admit(self, request, writer, write_lock) -> None:
        """Admission control: bounded enqueue or structured refusal."""
        name = request["tenant"]
        try:
            tenant = self.tenants.get(name)
        except ProtocolError as err:
            await self._send(
                writer, write_lock, error_response(request.get("id"), err)
            )
            return
        if self._draining:
            self._shed("draining")
            refusal = ProtocolError(
                "draining", "server is draining; no new requests are admitted"
            )
            await self._send(
                writer,
                write_lock,
                error_response(request.get("id"), refusal, tenant=name),
            )
            return
        queue = self._queues[name]
        try:
            queue.put_nowait((request, writer, write_lock))
        except asyncio.QueueFull:
            self._shed("overloaded")
            refusal = ProtocolError(
                "overloaded",
                f"tenant {name!r} queue is full "
                f"({tenant.quota.queue_limit} requests pending)",
                retry_after_seconds=tenant.quota.retry_after_seconds,
            )
            await self._send(
                writer,
                write_lock,
                error_response(request.get("id"), refusal, tenant=name),
            )

    def _shed(self, reason: str) -> None:
        self.shed_counts[reason] = self.shed_counts.get(reason, 0) + 1
        self.metrics_registry.counter(
            "repro_server_load_shed_total",
            "Requests refused by admission control, by reason.",
            labels={"reason": reason},
        ).inc()

    async def _tenant_worker(self, name: str, queue: asyncio.Queue) -> None:
        """Drain one tenant's queue in admission order, forever.

        Execution happens off-loop on the serving thread pool; the worker
        awaits each request to completion before taking the next, so a
        tenant's requests can never overlap or reorder.
        """
        loop = asyncio.get_event_loop()
        tenant = self.tenants.get(name)
        executor = self._pools.thread_pool(
            max(1, len(self.tenants)), role=ROLE_SERVING
        )
        while True:
            request, writer, write_lock = await queue.get()
            try:
                response = await loop.run_in_executor(
                    executor, tenant.execute, request
                )
                await self._send(writer, write_lock, response)
            except Exception:  # pragma: no cover - worker must survive
                pass
            finally:
                queue.task_done()

    async def _send(self, writer, write_lock, response: dict[str, Any]) -> None:
        payload = encode_response(response)
        async with write_lock:
            try:
                writer.write(payload)
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    # ------------------------------------------------------------------ #
    # server ops
    # ------------------------------------------------------------------ #
    async def _server_op(self, op: str, request) -> dict[str, Any]:
        if op == "healthz":
            return {
                "status": "draining" if self._draining else "ok",
                "protocol": PROTOCOL_VERSION,
                "tenants": len(self.tenants),
            }
        if op == "tenants":
            return {
                "tenants": [tenant.describe() for tenant in self.tenants]
            }
        if op == "metrics":
            loop = asyncio.get_event_loop()
            text = await loop.run_in_executor(None, self.metrics_text)
            return {"content_type": "text/plain; version=0.0.4", "text": text}
        if op == "drain":
            await self.drain()
            return {"drained": True}
        raise ProtocolError("unknown-op", f"op {op!r} is not a server operation")

    def metrics_text(self) -> str:
        """Merged Prometheus text: server registry + every tenant session.

        Tenant sessions keep tenant-agnostic registries; the merge injects a
        ``tenant`` label into every tenant-owned series, so one scrape sees
        the whole process without the sessions knowing they are multi-tenant.
        """
        merged: dict[str, Any] = {}

        def fold(data: dict[str, Any], extra_labels: dict[str, str]) -> None:
            for metric_name, family in data.items():
                target = merged.setdefault(
                    metric_name,
                    {"type": family["type"], "help": family["help"], "series": []},
                )
                for series in family["series"]:
                    labelled = dict(series)
                    labelled["labels"] = {**series["labels"], **extra_labels}
                    target["series"].append(labelled)

        fold(self.metrics_registry.snapshot().data, {})
        for name, tenant in self.tenants.items():
            # Session.metrics() stays readable after close() (it reads
            # counters, it does not execute), so drained tenants still scrape.
            fold(tenant.session.metrics().data, {"tenant": name})
        for family in merged.values():
            family["series"].sort(key=lambda s: sorted(s["labels"].items()))
        return MetricsSnapshot(merged, enabled=True).to_prometheus()
