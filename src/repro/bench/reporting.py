"""Plain-text rendering of experiment results.

Every benchmark prints the rows/series the corresponding paper figure plots,
in a fixed-width table that is easy to diff and to paste into EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.bench.harness import ExperimentSeries


def _render_cell(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Render a fixed-width table with a header rule."""
    rendered_rows = [[_render_cell(value) for value in row] for row in rows]
    rendered_headers = [str(header) for header in headers]
    widths = [len(header) for header in rendered_headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(header.ljust(width) for header, width in zip(rendered_headers, widths)),
        "  ".join("-" * width for width in widths),
    ]
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)


def format_series(series: ExperimentSeries, metric: str = "seconds") -> str:
    """Render one experiment series as an x-versus-methods table."""
    headers = [series.x_label] + [f"{method} [{metric}]" for method in series.methods()]
    return format_table(headers, series.as_rows(metric))


def render_experiment(
    title: str,
    series: ExperimentSeries,
    metrics: Sequence[str] = ("seconds",),
    notes: str = "",
) -> str:
    """Render a complete experiment report (title + one table per metric)."""
    sections = [f"== {title} =="]
    if notes:
        sections.append(notes)
    for metric in metrics:
        sections.append(format_series(series, metric=metric))
    return "\n\n".join(sections) + "\n"
