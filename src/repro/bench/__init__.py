"""Benchmark harness: experiment runners and report formatting.

The modules in this package power the scripts in ``benchmarks/``, which
regenerate every table and figure of the paper's evaluation section
(Section VIII).  The harness is importable on its own so that downstream
users can run the same sweeps against their own schemas and instances.
"""

from repro.bench.harness import (
    DEFAULT_METHODS,
    ExperimentPoint,
    ExperimentSeries,
    mb_to_scale,
    run_method,
    run_methods,
    run_workload,
    sweep_database_size,
    sweep_mapping_count,
)
from repro.bench.reporting import format_series, format_table, render_experiment

__all__ = [
    "DEFAULT_METHODS",
    "ExperimentPoint",
    "ExperimentSeries",
    "mb_to_scale",
    "run_method",
    "run_methods",
    "run_workload",
    "sweep_database_size",
    "sweep_mapping_count",
    "format_series",
    "format_table",
    "render_experiment",
]
