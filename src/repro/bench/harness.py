"""Experiment runners used by the ``benchmarks/`` scripts.

The paper's figures plot the running time of one or more evaluation methods
against an experiment parameter (query id, database size, number of mappings,
number of operators, k).  The harness provides exactly that: run a set of
methods on a scenario/query pair, collect wall-clock time and operator counts,
and sweep a parameter to produce a series per method.

The paper's x-axes are expressed in "database size (MB)" for a 100 MB TPC-H
instance; :func:`mb_to_scale` converts those labels into the generator's scale
factor so that a benchmark can print the same axis labels as the figure while
running at a laptop-friendly size (see EXPERIMENTS.md for the calibration).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from repro.core.evaluators.base import EvaluationResult
from repro.core.target_query import TargetQuery
from repro.datagen.generator import GeneratorConfig, generate_source_instance
from repro.datagen.scenario import MatchingScenario
from repro.obs.artifacts import series_payload, write_bench_artifact
from repro.policy import ExecutionPolicy
from repro.session import Session

#: The methods compared in Figures 11(a)-(e).
DEFAULT_METHODS: tuple[str, ...] = ("e-basic", "q-sharing", "o-sharing")

#: The methods compared in Figure 10(b)-(c).
SIMPLE_METHODS: tuple[str, ...] = ("basic", "e-basic", "e-mqo")

#: How much smaller than the paper's 100 MB instance the benchmark instance
#: is, per "paper megabyte".  The paper's 100 MB corresponds to scale 1.0 of
#: the generator; running the full sweep at that size is not feasible for a
#: pure-Python engine, so the benchmarks run at ``PAPER_MB_SCALE`` of it and
#: keep the figure's axis labels.
PAPER_MB_SCALE = 0.04


def mb_to_scale(paper_mb: float, calibration: float = PAPER_MB_SCALE) -> float:
    """Convert a paper-figure "database size (MB)" label into a generator scale.

    The paper's 100 MB instance corresponds to generator scale ``calibration``
    (0.04 by default), and intermediate sizes scale linearly.
    """
    if paper_mb <= 0:
        raise ValueError("paper_mb must be positive")
    return paper_mb / 100.0 * calibration


@dataclass
class ExperimentPoint:
    """One measured point: a method evaluated at one parameter value."""

    method: str
    x: Any
    seconds: float
    source_operators: int
    source_queries: int
    answers: int
    reformulations: int = 0
    details: dict[str, Any] = field(default_factory=dict)


@dataclass
class ExperimentSeries:
    """A collection of measured points, grouped per method."""

    title: str
    x_label: str
    points: list[ExperimentPoint] = field(default_factory=list)

    def add(self, point: ExperimentPoint) -> None:
        """Record one measured point."""
        self.points.append(point)

    def methods(self) -> list[str]:
        """Distinct methods, in first-appearance order."""
        seen: list[str] = []
        for point in self.points:
            if point.method not in seen:
                seen.append(point.method)
        return seen

    def x_values(self) -> list[Any]:
        """Distinct x values, in first-appearance order."""
        seen: list[Any] = []
        for point in self.points:
            if point.x not in seen:
                seen.append(point.x)
        return seen

    def value(self, method: str, x: Any, metric: str = "seconds") -> Any:
        """The measured metric for one (method, x) combination."""
        for point in self.points:
            if point.method == method and point.x == x:
                if hasattr(point, metric):
                    return getattr(point, metric)
                return point.details.get(metric)
        raise KeyError(f"no point for method={method!r}, x={x!r}")

    def as_rows(self, metric: str = "seconds") -> list[list[Any]]:
        """Rows of ``[x, metric(method_1), metric(method_2), ...]`` for reporting."""
        rows = []
        for x in self.x_values():
            row: list[Any] = [x]
            for method in self.methods():
                try:
                    row.append(self.value(method, x, metric))
                except KeyError:
                    row.append(None)
            rows.append(row)
        return rows


# --------------------------------------------------------------------------- #
# single-point runners
# --------------------------------------------------------------------------- #
def run_method(
    method: str,
    query: TargetQuery,
    scenario: MatchingScenario,
    x: Any = None,
    **options: Any,
) -> ExperimentPoint:
    """Run one method on one query and collect its measurements.

    Each point runs in a fresh throwaway :class:`~repro.session.Session`
    (cold caches — the paper's per-figure setting); :func:`run_session`
    measures the warm-session regime instead.
    """
    from repro.relational.parallel import default_manager

    started = time.perf_counter()
    policy = ExecutionPolicy.from_options(method=method, **options)
    with Session(
        scenario.database,
        scenario.mappings,
        links=scenario.links,
        policy=policy,
        pools=default_manager(),  # per-point sessions share warm workers
    ) as session:
        result = session.query(query)
    elapsed = time.perf_counter() - started
    return point_from_result(result, method=method, x=x, seconds=elapsed)


def point_from_result(
    result: EvaluationResult,
    method: str | None = None,
    x: Any = None,
    seconds: float | None = None,
) -> ExperimentPoint:
    """Convert an :class:`EvaluationResult` into an :class:`ExperimentPoint`."""
    details = dict(result.details)
    details.setdefault("rows_scanned", result.stats.rows_scanned)
    details.setdefault("plans_optimized", result.stats.plans_optimized)
    return ExperimentPoint(
        method=method or result.evaluator,
        x=x,
        seconds=result.elapsed_seconds if seconds is None else seconds,
        source_operators=result.stats.source_operators,
        source_queries=result.stats.source_queries,
        answers=len(result.answers),
        reformulations=result.stats.reformulations,
        details=details,
    )


def run_methods(
    methods: Sequence[str],
    query: TargetQuery,
    scenario: MatchingScenario,
    x: Any = None,
    **options: Any,
) -> list[ExperimentPoint]:
    """Run several methods on the same query and scenario."""
    return [run_method(method, query, scenario, x=x, **options) for method in methods]


def run_engines(
    methods: Sequence[str],
    engines: Sequence[str],
    query: TargetQuery,
    scenario: MatchingScenario,
    x: Any = None,
    **options: Any,
) -> list[ExperimentPoint]:
    """Run each method under each execution engine on the same query.

    The engine becomes part of the reported method label (``method@engine``)
    so a series carries the engine dimension through the standard reporting
    tables; ``point.details["engine"]`` holds it separately as well.
    """
    points = []
    for engine in engines:
        for method in methods:
            point = run_method(method, query, scenario, x=x, engine=engine, **options)
            point.method = f"{method}@{engine}"
            points.append(point)
    return points


def run_parallel_scaling(
    methods: Sequence[str],
    worker_counts: Sequence[int],
    query: TargetQuery,
    scenario: MatchingScenario,
    x: Any = None,
    kind: str = "thread",
    min_partition_rows: int = 2048,
    **options: Any,
) -> list[ExperimentPoint]:
    """Run each method on the parallel engine at several worker counts.

    A worker count of ``1`` is the serial-columnar baseline (the parallel
    engine with one worker falls back to the serial code on every node).
    The worker count becomes part of the reported method label
    (``method@parallel[w]``) so a series carries the scaling dimension
    through the standard reporting tables; ``point.details["workers"]``
    holds it separately as well.
    """
    from repro.relational.parallel import ParallelConfig

    points = []
    for workers in worker_counts:
        for method in methods:
            if workers <= 1:
                point = run_method(
                    method, query, scenario, x=x, engine="columnar", **options
                )
            else:
                config = ParallelConfig(
                    workers=workers, kind=kind, min_partition_rows=min_partition_rows
                )
                point = run_method(
                    method,
                    query,
                    scenario,
                    x=x,
                    engine="parallel",
                    parallel=config,
                    **options,
                )
            point.method = f"{method}@parallel[{workers}]"
            point.details["workers"] = workers
            points.append(point)
    return points


def run_optimizer_modes(
    methods: Sequence[str],
    query: TargetQuery,
    scenario: MatchingScenario,
    x: Any = None,
    **options: Any,
) -> list[ExperimentPoint]:
    """Run each method with the cost-based optimizer on and off.

    The mode becomes part of the reported method label (``method@opt`` /
    ``method@raw``) so a series carries the optimizer dimension through the
    standard reporting tables; ``point.details["optimize"]`` holds it
    separately as well.
    """
    points = []
    for optimize, suffix in ((True, "opt"), (False, "raw")):
        for method in methods:
            point = run_method(
                method, query, scenario, x=x, optimize=optimize, **options
            )
            point.method = f"{method}@{suffix}"
            points.append(point)
    return points


def _batch_point(batch, method: str, x: Any, seconds: float | None = None) -> ExperimentPoint:
    """Turn a :class:`BatchResult` into an :class:`ExperimentPoint`.

    Shared by :func:`run_workload` and :func:`run_session` so workload-point
    details (plan-cache snapshot, operators saved) never diverge between the
    two point kinds.
    """
    details = dict(batch.details)
    details["plan_cache"] = dict(batch.plan_cache)
    details["operators_saved"] = batch.stats.operators_saved
    details["plan_cache_hits"] = batch.stats.plan_cache_hits
    return ExperimentPoint(
        method=method,
        x=x,
        seconds=batch.total_seconds if seconds is None else seconds,
        source_operators=batch.stats.source_operators,
        source_queries=batch.stats.source_queries,
        answers=sum(len(result.answers) for result in batch.results),
        reformulations=batch.stats.reformulations,
        details=details,
    )


def run_workload(
    queries: Sequence[TargetQuery],
    scenario: MatchingScenario,
    x: Any = None,
    **options: Any,
) -> ExperimentPoint:
    """Run a whole workload through ``evaluate_many`` as one measured point.

    The point's aggregate counters cover the entire workload; the plan-cache
    snapshot and workload-level details land in ``point.details``.  Seconds
    are the phase-time sum, the same basis :func:`point_from_result` uses, so
    batch points are comparable with per-query method points.
    """
    from repro.relational.parallel import default_manager

    policy = ExecutionPolicy.from_options(method="batch", **options)
    with Session(
        scenario.database,
        scenario.mappings,
        links=scenario.links,
        policy=policy,
        pools=default_manager(),
    ) as session:
        batch = session.query_many(queries)
    return _batch_point(batch, method="batch", x=x)


def run_session(
    queries: Sequence[TargetQuery],
    scenario: MatchingScenario,
    passes: int = 2,
    x: Any = None,
    **options: Any,
) -> list[ExperimentPoint]:
    """Run a workload repeatedly through ONE warm session, one point per pass.

    This is the serving regime the session-first API exists for: the first
    pass pays for reformulation, planning and materialization; later passes
    are answered from the session's plan cache and optimizer memo.  Each
    pass becomes a point labelled ``session[p]`` (``p`` starting at 1) whose
    counters cover that pass only, so a series directly shows the warm-up
    curve; ``point.details["session"]`` carries the session-lifetime
    snapshot as of that pass.
    """
    if passes <= 0:
        raise ValueError("passes must be positive")
    policy = ExecutionPolicy.from_options(method="batch", **options)
    points: list[ExperimentPoint] = []
    with Session(
        scenario.database, scenario.mappings, links=scenario.links, policy=policy
    ) as session:
        for number in range(1, passes + 1):
            started = time.perf_counter()
            batch = session.query_many(queries)
            elapsed = time.perf_counter() - started
            point = _batch_point(
                batch, method=f"session[{number}]", x=x, seconds=elapsed
            )
            point.details["session"] = session.stats.snapshot()
            points.append(point)
    return points


# --------------------------------------------------------------------------- #
# perf artifacts
# --------------------------------------------------------------------------- #
def write_series_artifact(
    name: str,
    series: ExperimentSeries | Sequence[ExperimentSeries],
    gates: dict[str, Any] | None = None,
    root: Any = None,
    **extra: Any,
) -> Any:
    """Emit ``BENCH_<name>.json`` for one or more measured series.

    The benchmark scripts call this after their gates pass, so every
    CI-gated run leaves a machine-readable record
    (:mod:`repro.obs.artifacts` shapes the envelope).  ``gates`` records the
    thresholds the run was checked against; ``extra`` sections (scenario
    parameters, environment notes) are forwarded verbatim.  Returns the
    written path.
    """
    if isinstance(series, ExperimentSeries):
        payload: dict[str, Any] = {"series": series_payload(series)}
    else:
        payload = {"series": [series_payload(one) for one in series]}
    if gates is not None:
        payload["gates"] = gates
    payload.update(extra)
    return write_bench_artifact(name, payload, root=root)


# --------------------------------------------------------------------------- #
# parameter sweeps
# --------------------------------------------------------------------------- #
def sweep_mapping_count(
    methods: Sequence[str],
    query: TargetQuery,
    scenario: MatchingScenario,
    h_values: Iterable[int],
    title: str = "time vs number of mappings",
    **options: Any,
) -> ExperimentSeries:
    """Figure 10(c) / 11(c) style sweep: vary the number of possible mappings."""
    series = ExperimentSeries(title=title, x_label="mappings")
    for h in h_values:
        restricted = scenario.with_mappings(min(h, scenario.h))
        for point in run_methods(methods, query, restricted, x=h, **options):
            series.add(point)
    return series


def sweep_database_size(
    methods: Sequence[str],
    query_builder: Callable[[MatchingScenario], TargetQuery],
    scenario: MatchingScenario,
    paper_mbs: Iterable[float],
    calibration: float = PAPER_MB_SCALE,
    seed: int = 7,
    title: str = "time vs database size",
    **options: Any,
) -> ExperimentSeries:
    """Figure 10(b) / 11(b) style sweep: vary the source-instance size.

    ``paper_mbs`` are the axis labels of the paper's figure (20..100 MB); each
    is converted into a generator scale with :func:`mb_to_scale`.
    """
    series = ExperimentSeries(title=title, x_label="database size (MB)")
    for paper_mb in paper_mbs:
        scale = mb_to_scale(paper_mb, calibration)
        database = generate_source_instance(scale=scale, config=GeneratorConfig(seed=seed))
        sized = scenario.with_database(database, scale)
        query = query_builder(sized)
        for point in run_methods(methods, query, sized, x=paper_mb, **options):
            series.add(point)
    return series


def sweep_queries(
    methods: Sequence[str],
    query_ids: Sequence[str],
    scenarios: dict[str, MatchingScenario],
    title: str = "time per query",
    **options: Any,
) -> ExperimentSeries:
    """Figure 10(a) / 11(a) style sweep: one point per Table III query.

    ``scenarios`` maps a target schema name to the scenario to use for the
    queries defined on that schema.
    """
    from repro.workloads.queries import PAPER_QUERIES

    series = ExperimentSeries(title=title, x_label="query")
    for query_id in query_ids:
        spec = PAPER_QUERIES[query_id.upper()]
        scenario = scenarios[spec.target]
        query = spec.build(scenario.target_schema)
        for point in run_methods(methods, query, scenario, x=spec.query_id, **options):
            series.add(point)
    return series
