"""String similarity measures used by the composite matcher.

All measures return a similarity in ``[0, 1]`` where 1 means identical.  They
are implemented from scratch (no external record-linkage dependency) and are
individually exercised by unit tests; the composite matcher combines them
with weights the way COMA++ combines its individual matchers.
"""

from __future__ import annotations

from repro.matching.tokenize import normalize_tokens, normalized_name


def levenshtein_distance(left: str, right: str) -> int:
    """Classic dynamic-programming edit distance (insert/delete/substitute)."""
    if left == right:
        return 0
    if not left:
        return len(right)
    if not right:
        return len(left)
    previous = list(range(len(right) + 1))
    for i, left_char in enumerate(left, start=1):
        current = [i]
        for j, right_char in enumerate(right, start=1):
            cost = 0 if left_char == right_char else 1
            current.append(
                min(
                    previous[j] + 1,      # deletion
                    current[j - 1] + 1,   # insertion
                    previous[j - 1] + cost,  # substitution
                )
            )
        previous = current
    return previous[-1]


def levenshtein_similarity(left: str, right: str) -> float:
    """Edit distance normalised into a similarity: ``1 - d / max_len``."""
    if not left and not right:
        return 1.0
    longest = max(len(left), len(right))
    return 1.0 - levenshtein_distance(left, right) / longest


def jaro(left: str, right: str) -> float:
    """Jaro similarity (transposition-aware common-character matching)."""
    if left == right:
        return 1.0
    if not left or not right:
        return 0.0
    window = max(len(left), len(right)) // 2 - 1
    window = max(window, 0)
    left_matches = [False] * len(left)
    right_matches = [False] * len(right)
    matches = 0
    for i, char in enumerate(left):
        start = max(0, i - window)
        end = min(i + window + 1, len(right))
        for j in range(start, end):
            if right_matches[j] or right[j] != char:
                continue
            left_matches[i] = True
            right_matches[j] = True
            matches += 1
            break
    if matches == 0:
        return 0.0
    transpositions = 0
    j = 0
    for i, matched in enumerate(left_matches):
        if not matched:
            continue
        while not right_matches[j]:
            j += 1
        if left[i] != right[j]:
            transpositions += 1
        j += 1
    transpositions //= 2
    return (
        matches / len(left) + matches / len(right) + (matches - transpositions) / matches
    ) / 3.0


def jaro_winkler(left: str, right: str, prefix_scale: float = 0.1) -> float:
    """Jaro-Winkler similarity (Jaro boosted by a shared prefix of up to 4 chars)."""
    base = jaro(left, right)
    prefix = 0
    for left_char, right_char in zip(left[:4], right[:4]):
        if left_char != right_char:
            break
        prefix += 1
    return base + prefix * prefix_scale * (1.0 - base)


def ngram_similarity(left: str, right: str, n: int = 3) -> float:
    """Dice coefficient over character n-grams (default trigrams).

    Strings shorter than ``n`` are padded with ``#`` so that very short names
    still produce at least one gram.
    """
    left_grams = _ngrams(left, n)
    right_grams = _ngrams(right, n)
    if not left_grams and not right_grams:
        return 1.0
    if not left_grams or not right_grams:
        return 0.0
    overlap = sum(min(left_grams[gram], right_grams.get(gram, 0)) for gram in left_grams)
    total = sum(left_grams.values()) + sum(right_grams.values())
    return 2.0 * overlap / total


def _ngrams(text: str, n: int) -> dict[str, int]:
    padded = f"{'#' * (n - 1)}{text}{'#' * (n - 1)}" if text else ""
    grams: dict[str, int] = {}
    for i in range(max(len(padded) - n + 1, 0)):
        gram = padded[i : i + n]
        grams[gram] = grams.get(gram, 0) + 1
    return grams


def token_similarity(left: str, right: str) -> float:
    """Dice coefficient over normalised word tokens of the two names."""
    left_tokens = set(normalize_tokens(left))
    right_tokens = set(normalize_tokens(right))
    if not left_tokens and not right_tokens:
        return 1.0
    if not left_tokens or not right_tokens:
        return 0.0
    return 2.0 * len(left_tokens & right_tokens) / (len(left_tokens) + len(right_tokens))


def prefix_suffix_similarity(left: str, right: str) -> float:
    """Similarity based on the longest common prefix and suffix of normalised names."""
    left_norm = normalized_name(left)
    right_norm = normalized_name(right)
    if not left_norm and not right_norm:
        return 1.0
    if not left_norm or not right_norm:
        return 0.0
    prefix = 0
    for left_char, right_char in zip(left_norm, right_norm):
        if left_char != right_char:
            break
        prefix += 1
    suffix = 0
    for left_char, right_char in zip(reversed(left_norm), reversed(right_norm)):
        if left_char != right_char:
            break
        suffix += 1
    suffix = min(suffix, min(len(left_norm), len(right_norm)) - prefix)
    shorter = min(len(left_norm), len(right_norm))
    return (prefix + max(suffix, 0)) / shorter if shorter else 0.0
