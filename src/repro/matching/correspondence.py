"""Correspondences between source and target attributes.

A correspondence is a scored pair ``(source attribute, target attribute)``,
identified by qualified names (``relation.attribute``) so that attributes in
different relations never collide.  The figure-1 example of the paper —
``(ophone, phone)`` with score 0.85 — is a correspondence in this sense.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Correspondence:
    """A scored attribute correspondence.

    Ordering sorts by score (ascending) so that ``max``/``sorted`` behave
    naturally; the matcher returns correspondences sorted descending by score.
    """

    score: float
    source: str
    target: str

    def __post_init__(self) -> None:
        if not 0.0 <= self.score <= 1.0 + 1e-9:
            raise ValueError(f"correspondence score {self.score} outside [0, 1]")

    @property
    def pair(self) -> tuple[str, str]:
        """The ``(source, target)`` identity of the correspondence (score ignored)."""
        return (self.source, self.target)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.source} ~ {self.target}, {self.score:.2f})"
