"""Maximum-weight bipartite assignment (Hungarian algorithm).

The possible-mapping construction of the paper (Section II / VIII-A) evaluates
a *bipartite matching algorithm* over the matcher's similarity scores and
keeps the h best matchings.  This module provides the single best assignment;
:mod:`repro.matching.kbest` builds Murty's k-best enumeration on top of it.

The implementation is the classical shortest-augmenting-path formulation with
row/column potentials (O(n² · m)), written for rectangular matrices with at
most as many rows as columns.  ``FORBIDDEN`` marks pairs that must never be
chosen (used by Murty's partitioning and by score thresholds).
"""

from __future__ import annotations

from typing import Callable, Sequence

#: Weight assigned to pairs that must not be selected.  Any assignment whose
#: total weight dips below ``FORBIDDEN / 2`` is treated as infeasible.
FORBIDDEN = -1.0e9

AssignmentSolver = Callable[[Sequence[Sequence[float]]], list[int]]


def max_weight_assignment(weights: Sequence[Sequence[float]]) -> list[int]:
    """Solve the rectangular assignment problem, maximising total weight.

    Parameters
    ----------
    weights:
        ``weights[i][j]`` is the weight of assigning row ``i`` to column ``j``.
        The number of rows must not exceed the number of columns.

    Returns
    -------
    list[int]
        ``assignment[i]`` is the column assigned to row ``i``.  Every row is
        assigned (columns may be left unassigned); callers encode "allow row
        to stay unmatched" by adding per-row dummy columns.
    """
    rows = len(weights)
    if rows == 0:
        return []
    cols = len(weights[0])
    if any(len(row) != cols for row in weights):
        raise ValueError("weight matrix is ragged")
    if rows > cols:
        raise ValueError(
            f"assignment requires rows <= columns, got {rows} rows and {cols} columns"
        )
    # Convert to a minimisation problem.
    cost = [[-value for value in row] for row in weights]
    return _min_cost_assignment(cost)


def assignment_weight(weights: Sequence[Sequence[float]], assignment: Sequence[int]) -> float:
    """Total weight of an assignment produced by :func:`max_weight_assignment`."""
    return sum(weights[i][j] for i, j in enumerate(assignment))


def is_feasible(weights: Sequence[Sequence[float]], assignment: Sequence[int]) -> bool:
    """True when the assignment avoids all :data:`FORBIDDEN` pairs."""
    return all(weights[i][j] > FORBIDDEN / 2 for i, j in enumerate(assignment))


def _min_cost_assignment(cost: list[list[float]]) -> list[int]:
    """Shortest-augmenting-path assignment for a rows<=cols cost matrix."""
    rows = len(cost)
    cols = len(cost[0])
    infinity = float("inf")
    # Potentials; arrays are 1-indexed following the classical presentation.
    u = [0.0] * (rows + 1)
    v = [0.0] * (cols + 1)
    # p[j] = row matched to column j (0 = unmatched).
    p = [0] * (cols + 1)
    way = [0] * (cols + 1)
    for i in range(1, rows + 1):
        p[0] = i
        j0 = 0
        minv = [infinity] * (cols + 1)
        used = [False] * (cols + 1)
        while True:
            used[j0] = True
            i0 = p[j0]
            delta = infinity
            j1 = -1
            row_cost = cost[i0 - 1]
            for j in range(1, cols + 1):
                if used[j]:
                    continue
                current = row_cost[j - 1] - u[i0] - v[j]
                if current < minv[j]:
                    minv[j] = current
                    way[j] = j0
                if minv[j] < delta:
                    delta = minv[j]
                    j1 = j
            for j in range(cols + 1):
                if used[j]:
                    u[p[j]] += delta
                    v[j] -= delta
                else:
                    minv[j] -= delta
            j0 = j1
            if p[j0] == 0:
                break
        while j0:
            j1 = way[j0]
            p[j0] = p[j1]
            j0 = j1
    assignment = [-1] * rows
    for j in range(1, cols + 1):
        if p[j]:
            assignment[p[j] - 1] = j - 1
    return assignment


def scipy_assignment_solver() -> AssignmentSolver | None:
    """Return a scipy-backed solver when scipy is importable, else ``None``.

    The pure-Python solver is always correct; the scipy solver (Jonker-
    Volgenant, C implementation) is used by the scenario builder to speed up
    Murty's enumeration for large mapping counts.  Tests cross-validate the
    two implementations.
    """
    try:
        from scipy.optimize import linear_sum_assignment
    except ImportError:  # pragma: no cover - scipy is installed in CI
        return None

    import numpy as np

    def solve(weights: Sequence[Sequence[float]]) -> list[int]:
        matrix = np.asarray(weights, dtype=float)
        row_indexes, col_indexes = linear_sum_assignment(matrix, maximize=True)
        assignment = [-1] * matrix.shape[0]
        for row, column in zip(row_indexes, col_indexes):
            assignment[int(row)] = int(column)
        return assignment

    return solve
