"""Schema-matching substrate (stand-in for COMA++).

The paper consumes the *output* of a schema matcher: scored correspondences
between source and target attributes, turned into a set of possible mappings
by a k-best bipartite-matching construction.  This package provides the whole
pipeline from scratch:

* :mod:`repro.matching.similarity` — string similarity measures
  (Levenshtein, Jaro-Winkler, n-gram, token overlap, prefix/suffix).
* :mod:`repro.matching.tokenize` — attribute-name tokenisation.
* :mod:`repro.matching.matcher` — the composite matcher producing a scored
  correspondence matrix between two schemas.
* :mod:`repro.matching.hungarian` — maximum-weight bipartite assignment.
* :mod:`repro.matching.kbest` — Murty's algorithm enumerating the h best
  assignments.
* :mod:`repro.matching.mappings` — the possible-mapping model
  (:class:`Mapping`, :class:`MappingSet`) with probability normalisation and
  the o-ratio overlap metric of Section VIII-B.1.
"""

from repro.matching.correspondence import Correspondence
from repro.matching.hungarian import max_weight_assignment
from repro.matching.kbest import k_best_assignments
from repro.matching.mappings import Mapping, MappingSet, generate_possible_mappings
from repro.matching.matcher import CompositeMatcher, MatchResult, match_schemas
from repro.matching.similarity import (
    jaro_winkler,
    levenshtein_similarity,
    ngram_similarity,
    prefix_suffix_similarity,
    token_similarity,
)

__all__ = [
    "Correspondence",
    "max_weight_assignment",
    "k_best_assignments",
    "Mapping",
    "MappingSet",
    "generate_possible_mappings",
    "CompositeMatcher",
    "MatchResult",
    "match_schemas",
    "jaro_winkler",
    "levenshtein_similarity",
    "ngram_similarity",
    "prefix_suffix_similarity",
    "token_similarity",
]
