"""Murty's algorithm: the k best assignments of a bipartite weight matrix.

Given the matcher's score matrix, the k best one-to-one assignments are the
k best *possible mappings* (Section II of the paper).  Murty's algorithm
enumerates assignments in non-increasing weight order by best-first search
over sub-problems: each popped solution is partitioned into child problems
that force a prefix of its pairs and forbid the next pair.

The implementation accepts any assignment solver with the signature of
:func:`repro.matching.hungarian.max_weight_assignment`; by default the pure
Python solver is used, and the scenario builder passes the scipy-backed
solver for large mapping counts.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.matching.hungarian import (
    FORBIDDEN,
    AssignmentSolver,
    assignment_weight,
    is_feasible,
    max_weight_assignment,
)


@dataclass(frozen=True)
class RankedAssignment:
    """One enumerated assignment together with its total weight and rank."""

    rank: int
    weight: float
    assignment: tuple[int, ...]


@dataclass(order=True)
class _Subproblem:
    """A node of Murty's search tree (max-heap via negated weight)."""

    negated_weight: float
    tie_breaker: int
    assignment: tuple[int, ...] = field(compare=False)
    forced: tuple[tuple[int, int], ...] = field(compare=False)
    forbidden: tuple[tuple[int, int], ...] = field(compare=False)


def k_best_assignments(
    weights: Sequence[Sequence[float]],
    k: int,
    solver: AssignmentSolver | None = None,
) -> list[RankedAssignment]:
    """Return up to ``k`` feasible assignments in non-increasing weight order."""
    return list(iter_best_assignments(weights, k, solver=solver))


def iter_best_assignments(
    weights: Sequence[Sequence[float]],
    k: int,
    solver: AssignmentSolver | None = None,
) -> Iterator[RankedAssignment]:
    """Lazily yield up to ``k`` assignments in non-increasing weight order."""
    if k <= 0:
        return
    solve = solver or max_weight_assignment
    base = [list(row) for row in weights]
    rows = len(base)
    if rows == 0:
        return

    counter = itertools.count()
    heap: list[_Subproblem] = []
    first = _solve_constrained(base, (), (), solve)
    if first is None:
        return
    assignment, weight = first
    heapq.heappush(
        heap,
        _Subproblem(-weight, next(counter), assignment, (), ()),
    )
    emitted = 0
    seen: set[tuple[int, ...]] = set()
    while heap and emitted < k:
        node = heapq.heappop(heap)
        if node.assignment in seen:
            continue
        seen.add(node.assignment)
        emitted += 1
        yield RankedAssignment(
            rank=emitted, weight=-node.negated_weight, assignment=node.assignment
        )
        # Partition the node into child sub-problems (Murty's split).
        forced: list[tuple[int, int]] = list(node.forced)
        forced_rows = {row for row, _ in node.forced}
        for row in range(rows):
            if row in forced_rows:
                continue
            pair = (row, node.assignment[row])
            child_forbidden = node.forbidden + (pair,)
            child_forced = tuple(forced)
            solved = _solve_constrained(base, child_forced, child_forbidden, solve)
            if solved is not None:
                child_assignment, child_weight = solved
                heapq.heappush(
                    heap,
                    _Subproblem(
                        -child_weight,
                        next(counter),
                        child_assignment,
                        child_forced,
                        child_forbidden,
                    ),
                )
            forced.append(pair)
            forced_rows.add(row)


def _solve_constrained(
    base: list[list[float]],
    forced: tuple[tuple[int, int], ...],
    forbidden: tuple[tuple[int, int], ...],
    solve: AssignmentSolver,
) -> tuple[tuple[int, ...], float] | None:
    """Solve the assignment problem under forced/forbidden pair constraints.

    Returns ``None`` when no feasible assignment exists (some row can only be
    matched through a forbidden pair).
    """
    matrix = [row[:] for row in base]
    cols = len(matrix[0]) if matrix else 0
    for row, column in forbidden:
        matrix[row][column] = FORBIDDEN
    for row, column in forced:
        kept = matrix[row][column]
        matrix[row] = [FORBIDDEN] * cols
        matrix[row][column] = kept
        # Prevent other rows from stealing the forced column.
        for other in range(len(matrix)):
            if other != row:
                matrix[other][column] = FORBIDDEN
    assignment = solve(matrix)
    if not is_feasible(matrix, assignment):
        return None
    weight = assignment_weight(matrix, assignment)
    return tuple(assignment), weight
