"""The composite schema matcher (COMA++ stand-in).

COMA++ combines several individual matchers (name-based, structure-based,
instance-based) and aggregates their scores into a single similarity per
attribute pair.  This reproduction implements a name-based composite matcher:
each attribute pair is scored by a weighted combination of string-similarity
measures over the attribute names plus a small contextual bonus when the
owning relation names are also similar.

The matcher's output — a :class:`MatchResult` holding the dense score matrix
and its above-threshold correspondences — is what the possible-mapping
construction of :mod:`repro.matching.mappings` consumes, exactly the way the
paper consumes COMA++'s output.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Sequence

from repro.matching.correspondence import Correspondence
from repro.matching.similarity import (
    jaro_winkler,
    levenshtein_similarity,
    ngram_similarity,
    prefix_suffix_similarity,
    token_similarity,
)
from repro.matching.tokenize import normalized_name
from repro.relational.schema import Attribute, DatabaseSchema

#: Default weights of the individual measures, mirroring COMA++'s default
#: "combined" strategy of averaging several name matchers.
DEFAULT_WEIGHTS: dict[str, float] = {
    "levenshtein": 0.25,
    "jaro_winkler": 0.20,
    "ngram": 0.20,
    "token": 0.25,
    "prefix_suffix": 0.10,
}

#: Bonus (additive, capped at 1.0) applied when the owning relation names of
#: the two attributes are themselves similar.
RELATION_CONTEXT_BONUS = 0.05

#: Correspondences scoring below this threshold are not reported.
DEFAULT_THRESHOLD = 0.45


@dataclass
class MatchResult:
    """Output of matching a source schema against a target schema."""

    source_schema: DatabaseSchema
    target_schema: DatabaseSchema
    #: score[target_qualified][source_qualified] — dense similarity matrix
    scores: dict[str, dict[str, float]]
    #: above-threshold correspondences, sorted by descending score
    correspondences: list[Correspondence]
    threshold: float

    @property
    def source_attributes(self) -> list[str]:
        """Qualified source attribute names, in schema order."""
        return [attribute.qualified for attribute in self.source_schema.attributes]

    @property
    def target_attributes(self) -> list[str]:
        """Qualified target attribute names, in schema order."""
        return [attribute.qualified for attribute in self.target_schema.attributes]

    def score(self, target: str, source: str) -> float:
        """Similarity between a target and a source attribute (0 when unknown)."""
        return self.scores.get(target, {}).get(source, 0.0)

    def candidates(self, target: str, limit: int | None = None) -> list[Correspondence]:
        """Above-threshold candidate correspondences for one target attribute."""
        found = [c for c in self.correspondences if c.target == target]
        return found[:limit] if limit is not None else found

    def best_correspondence(self, target: str) -> Correspondence | None:
        """The highest-scoring candidate for a target attribute, if any."""
        candidates = self.candidates(target, limit=1)
        return candidates[0] if candidates else None

    def correspondence_count(self) -> int:
        """Number of above-threshold correspondences (paper reports 34/18/31)."""
        return len(self.correspondences)


class CompositeMatcher:
    """Weighted combination of name-based similarity measures.

    Two optional knobs emulate the behaviour of a full COMA++-style matcher
    ensemble whose non-name matchers (structure, instance, reuse) are not
    reproducible from schema text alone:

    * ``compress`` applies a square-root to the combined name score, which
      pulls the scores into the tightly clustered band real matchers produce
      (the paper's Figure 1 shows alternatives at 0.85/0.83/0.81);
    * ``ensemble_noise`` mixes in a deterministic pseudo-random per-pair
      component standing in for those other matchers' votes.  It is what makes
      the k-best mappings disagree on many attributes — the uncertainty the
      paper's evaluation exercises — rather than only on the few exactly tied
      name scores.

    Both default to off so that the matcher in isolation is a clean,
    predictable name matcher; :func:`repro.datagen.scenario.build_scenario`
    switches them on to reproduce the paper's experimental regime.
    """

    def __init__(
        self,
        weights: dict[str, float] | None = None,
        threshold: float = DEFAULT_THRESHOLD,
        relation_bonus: float = RELATION_CONTEXT_BONUS,
        ensemble_noise: float = 0.0,
        compress: bool = False,
    ):
        self.weights = dict(DEFAULT_WEIGHTS if weights is None else weights)
        total = sum(self.weights.values())
        if total <= 0:
            raise ValueError("matcher weights must sum to a positive value")
        self.weights = {name: weight / total for name, weight in self.weights.items()}
        self.threshold = threshold
        self.relation_bonus = relation_bonus
        if not 0.0 <= ensemble_noise < 1.0:
            raise ValueError("ensemble_noise must be in [0, 1)")
        self.ensemble_noise = ensemble_noise
        self.compress = compress

    # ------------------------------------------------------------------ #
    @staticmethod
    def _pair_component(source_qualified: str, target_qualified: str) -> float:
        """Deterministic pseudo-random component in [0, 1) for one attribute pair."""
        digest = hashlib.md5(f"{source_qualified}|{target_qualified}".encode()).digest()
        return int.from_bytes(digest[:4], "big") / 2**32

    def attribute_similarity(self, source: Attribute, target: Attribute) -> float:
        """Similarity of one source/target attribute pair."""
        source_name = normalized_name(source.name)
        target_name = normalized_name(target.name)
        measures = {
            "levenshtein": levenshtein_similarity(source_name, target_name),
            "jaro_winkler": jaro_winkler(source_name, target_name),
            "ngram": ngram_similarity(source_name, target_name),
            "token": token_similarity(source.name, target.name),
            "prefix_suffix": prefix_suffix_similarity(source.name, target.name),
        }
        score = sum(self.weights.get(name, 0.0) * value for name, value in measures.items())
        if self.relation_bonus:
            relation_similarity = token_similarity(source.relation, target.relation)
            score = min(1.0, score + self.relation_bonus * relation_similarity)
        if self.compress:
            score = score**0.5
        if self.ensemble_noise:
            component = self._pair_component(source.qualified, target.qualified)
            score = (1.0 - self.ensemble_noise) * score + self.ensemble_noise * component
        return score

    def match(self, source_schema: DatabaseSchema, target_schema: DatabaseSchema) -> MatchResult:
        """Score every (target, source) attribute pair of the two schemas."""
        scores: dict[str, dict[str, float]] = {}
        correspondences: list[Correspondence] = []
        for target in target_schema.attributes:
            row: dict[str, float] = {}
            for source in source_schema.attributes:
                similarity = self.attribute_similarity(source, target)
                row[source.qualified] = similarity
                if similarity >= self.threshold:
                    correspondences.append(
                        Correspondence(
                            score=round(similarity, 6),
                            source=source.qualified,
                            target=target.qualified,
                        )
                    )
            scores[target.qualified] = row
        correspondences.sort(key=lambda c: (-c.score, c.target, c.source))
        return MatchResult(
            source_schema=source_schema,
            target_schema=target_schema,
            scores=scores,
            correspondences=correspondences,
            threshold=self.threshold,
        )


def match_schemas(
    source_schema: DatabaseSchema,
    target_schema: DatabaseSchema,
    threshold: float = DEFAULT_THRESHOLD,
    weights: dict[str, float] | None = None,
) -> MatchResult:
    """Convenience wrapper around :class:`CompositeMatcher`."""
    matcher = CompositeMatcher(weights=weights, threshold=threshold)
    return matcher.match(source_schema, target_schema)
