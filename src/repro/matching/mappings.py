"""The possible-mapping model (Section III-A of the paper).

An uncertain matching between a source schema ``S`` and a target schema ``T``
is a set ``M = {m_1, ..., m_h}`` of possible mappings.  Each mapping is a
one-to-one, partial set of attribute correspondences and carries a
probability; the mapping events are mutually exclusive and the probabilities
sum to one.

``generate_possible_mappings`` reproduces the construction the paper cites
from [8], [9], [10]: run a k-best bipartite-matching enumeration over the
matcher's similarity scores, keep the ``h`` best mappings, and normalise each
mapping's total similarity score by the sum over the ``h`` mappings to obtain
its probability.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping as TMapping, Sequence

from repro.matching.correspondence import Correspondence
from repro.matching.hungarian import AssignmentSolver
from repro.matching.kbest import iter_best_assignments
from repro.matching.matcher import MatchResult


@dataclass(frozen=True)
class Mapping:
    """One possible mapping: a one-to-one partial attribute correspondence set."""

    mapping_id: int
    #: target qualified attribute -> source qualified attribute
    correspondences: TMapping[str, str]
    #: total similarity score of the mapping (sum of correspondence scores)
    score: float
    #: probability that this mapping is the correct one
    probability: float

    def source_for(self, target_attribute: str) -> str | None:
        """Source attribute matched to ``target_attribute`` (None if unmatched)."""
        return self.correspondences.get(target_attribute)

    @property
    def pairs(self) -> frozenset[tuple[str, str]]:
        """The correspondence pairs as a hashable set (used by the o-ratio)."""
        return frozenset(self.correspondences.items())

    @property
    def size(self) -> int:
        """Number of correspondences in the mapping."""
        return len(self.correspondences)

    def covers(self, target_attributes: Iterable[str]) -> bool:
        """True when every listed target attribute is matched by this mapping."""
        return all(attribute in self.correspondences for attribute in target_attributes)

    def signature(self, target_attributes: Sequence[str]) -> tuple[str | None, ...]:
        """The source attributes assigned to the listed target attributes.

        Two mappings with equal signatures for a query's attributes produce
        the same source query — this is the grouping criterion of q-sharing.
        """
        return tuple(self.correspondences.get(attribute) for attribute in target_attributes)

    def with_probability(self, probability: float) -> "Mapping":
        """A copy of this mapping carrying a different probability."""
        return Mapping(
            mapping_id=self.mapping_id,
            correspondences=self.correspondences,
            score=self.score,
            probability=probability,
        )

    def overlap(self, other: "Mapping") -> float:
        """The o-ratio of two mappings: |m_i ∩ m_j| / |m_i ∪ m_j| over pairs."""
        mine, theirs = self.pairs, other.pairs
        union = len(mine | theirs)
        if union == 0:
            return 1.0
        return len(mine & theirs) / union

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"m{self.mapping_id}(|c|={self.size}, p={self.probability:.3f})"


class MappingSet:
    """An ordered set of possible mappings with normalised probabilities."""

    def __init__(self, mappings: Sequence[Mapping], normalize: bool = False):
        mappings = list(mappings)
        if not mappings:
            raise ValueError("a MappingSet needs at least one mapping")
        if normalize:
            mappings = self._normalized(mappings)
        self.mappings: list[Mapping] = mappings
        self._by_id = {mapping.mapping_id: mapping for mapping in mappings}
        if len(self._by_id) != len(mappings):
            raise ValueError("duplicate mapping ids in MappingSet")

    # ------------------------------------------------------------------ #
    @staticmethod
    def _normalized(mappings: list[Mapping]) -> list[Mapping]:
        total = sum(mapping.score for mapping in mappings)
        if total <= 0:
            uniform = 1.0 / len(mappings)
            return [mapping.with_probability(uniform) for mapping in mappings]
        return [mapping.with_probability(mapping.score / total) for mapping in mappings]

    # ------------------------------------------------------------------ #
    @property
    def size(self) -> int:
        """Number of possible mappings (the paper's ``h``)."""
        return len(self.mappings)

    @property
    def total_probability(self) -> float:
        """Sum of the mapping probabilities (should be ~1)."""
        return sum(mapping.probability for mapping in self.mappings)

    def mapping(self, mapping_id: int) -> Mapping:
        """Mapping with a given id."""
        try:
            return self._by_id[mapping_id]
        except KeyError:
            raise KeyError(f"no mapping with id {mapping_id}") from None

    def subset(self, h: int) -> "MappingSet":
        """The first ``h`` mappings, re-normalised (used by the #mappings sweeps)."""
        if h <= 0:
            raise ValueError("subset size must be positive")
        return MappingSet(self.mappings[:h], normalize=True)

    def probability_of(self, mappings: Iterable[Mapping]) -> float:
        """Total probability of a group of mappings."""
        return sum(mapping.probability for mapping in mappings)

    # -- overlap metrics (Section VIII-B.1) ----------------------------- #
    def o_ratio(self) -> float:
        """Average pairwise overlap ratio of the mapping set."""
        if len(self.mappings) < 2:
            return 1.0
        total = 0.0
        count = 0
        for left, right in itertools.combinations(self.mappings, 2):
            total += left.overlap(right)
            count += 1
        return total / count

    def shared_correspondences(self) -> frozenset[tuple[str, str]]:
        """Correspondence pairs shared by *every* mapping in the set."""
        shared = set(self.mappings[0].pairs)
        for mapping in self.mappings[1:]:
            shared &= mapping.pairs
        return frozenset(shared)

    # ------------------------------------------------------------------ #
    def __iter__(self) -> Iterator[Mapping]:
        return iter(self.mappings)

    def __len__(self) -> int:
        return len(self.mappings)

    def __getitem__(self, index: int) -> Mapping:
        return self.mappings[index]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MappingSet(h={len(self.mappings)}, o_ratio≈{self.o_ratio():.2f})"


def generate_possible_mappings(
    match_result: MatchResult,
    h: int,
    solver: AssignmentSolver | None = None,
    candidate_threshold: float | None = None,
) -> MappingSet:
    """Generate the ``h`` best possible mappings from a matcher result.

    The construction follows Section II/VIII-A of the paper:

    1. keep, per target attribute, the above-threshold candidate source
       attributes;
    2. enumerate one-to-one assignments in decreasing total-score order with
       Murty's algorithm (each target attribute may also stay unmatched via a
       per-attribute dummy column);
    3. keep the ``h`` best assignments and normalise their total scores into
       probabilities.
    """
    if h <= 0:
        raise ValueError("h must be positive")
    threshold = match_result.threshold if candidate_threshold is None else candidate_threshold

    # Target attributes that have at least one candidate, with their candidates.
    candidate_map: dict[str, list[tuple[str, float]]] = {}
    for correspondence in match_result.correspondences:
        if correspondence.score < threshold:
            continue
        candidate_map.setdefault(correspondence.target, []).append(
            (correspondence.source, correspondence.score)
        )
    if not candidate_map:
        raise ValueError(
            "the match result has no correspondence above the threshold; "
            "cannot build possible mappings"
        )

    targets = sorted(candidate_map)
    sources = sorted({source for candidates in candidate_map.values() for source, _ in candidates})
    source_index = {source: i for i, source in enumerate(sources)}

    # Columns: real source attributes followed by one dummy column per target
    # attribute (allows the mapping to stay partial).  Dummy pairs score 0,
    # every other non-candidate pair is forbidden.
    from repro.matching.hungarian import FORBIDDEN

    columns = len(sources) + len(targets)
    weights: list[list[float]] = []
    for row, target in enumerate(targets):
        row_weights = [FORBIDDEN] * columns
        for source, score in candidate_map[target]:
            row_weights[source_index[source]] = score
        row_weights[len(sources) + row] = 0.0
        weights.append(row_weights)

    mappings: list[Mapping] = []
    for ranked in iter_best_assignments(weights, h, solver=solver):
        correspondences: dict[str, str] = {}
        score = 0.0
        for row, column in enumerate(ranked.assignment):
            if column >= len(sources):
                continue  # dummy column: target attribute left unmatched
            target = targets[row]
            source = sources[column]
            correspondences[target] = source
            score += match_result.score(target, source)
        mappings.append(
            Mapping(
                mapping_id=len(mappings) + 1,
                correspondences=correspondences,
                score=score,
                probability=0.0,
            )
        )
    if not mappings:
        raise ValueError("no feasible mapping could be generated")
    return MappingSet(mappings, normalize=True)
