"""Attribute-name tokenisation.

Schema attribute names mix conventions — ``deliverToStreet``, ``o_orderkey``,
``ship_to_phone`` — so every similarity measure that works on tokens first
normalises a name into a list of lowercase word tokens.
"""

from __future__ import annotations

import re

_CAMEL_BOUNDARY = re.compile(r"(?<=[a-z0-9])(?=[A-Z])|(?<=[A-Z])(?=[A-Z][a-z])")
_NON_ALNUM = re.compile(r"[^0-9a-zA-Z]+")
_DIGIT_BOUNDARY = re.compile(r"(?<=[a-zA-Z])(?=[0-9])|(?<=[0-9])(?=[a-zA-Z])")

#: Common abbreviations expanded before comparison.  The real COMA++ uses a
#: synonym dictionary; this small table captures the purchase-order domain.
ABBREVIATIONS: dict[str, str] = {
    "no": "number",
    "num": "number",
    "nbr": "number",
    "qty": "quantity",
    "amt": "amount",
    "addr": "address",
    "tel": "telephone",
    "phone": "telephone",
    "cust": "customer",
    "ord": "order",
    "descr": "description",
    "desc": "description",
    "id": "key",
    "key": "key",
    "bill": "invoice",
    "person": "name",
    "buyer": "customer",
    "vendor": "supplier",
    "article": "item",
    "product": "item",
}

#: Domain vocabulary used to segment run-together tokens (``orderkey`` →
#: ``order`` + ``key``).  Database attribute names frequently concatenate
#: words without a case or underscore boundary; COMA++ handles this with a
#: dictionary-based tokeniser, which this list emulates for the purchase-order
#: domain.  Longest words first so greedy segmentation prefers them.
VOCABULARY: tuple[str, ...] = tuple(
    sorted(
        {
            "addr",
            "address",
            "amount",
            "available",
            "balance",
            "brand",
            "city",
            "clerk",
            "company",
            "contact",
            "cost",
            "country",
            "cust",
            "customer",
            "date",
            "deliver",
            "discount",
            "invoice",
            "item",
            "key",
            "line",
            "mobile",
            "name",
            "nation",
            "num",
            "number",
            "order",
            "part",
            "phone",
            "price",
            "priority",
            "qty",
            "quantity",
            "region",
            "ship",
            "size",
            "status",
            "street",
            "supp",
            "supplier",
            "supply",
            "tax",
            "telephone",
            "total",
            "unit",
        },
        key=len,
        reverse=True,
    )
)


def segment_token(token: str, vocabulary: tuple[str, ...] = VOCABULARY) -> list[str]:
    """Split a run-together token into vocabulary words where possible.

    Greedy longest-prefix segmentation: ``orderkey`` → ``['order', 'key']``,
    ``itemnum`` → ``['item', 'num']``.  Characters that match no vocabulary
    word are accumulated and emitted as-is, so unknown tokens survive
    unchanged.

    >>> segment_token("orderkey")
    ['order', 'key']
    >>> segment_token("foobar")
    ['foobar']
    """
    pieces: list[str] = []
    residue = ""
    position = 0
    while position < len(token):
        match = next(
            (word for word in vocabulary if token.startswith(word, position)), None
        )
        if match is None:
            residue += token[position]
            position += 1
            continue
        if residue:
            pieces.append(residue)
            residue = ""
        pieces.append(match)
        position += len(match)
    if residue:
        pieces.append(residue)
    return pieces or [token]


def split_name(name: str) -> list[str]:
    """Split an attribute or relation name into lowercase tokens.

    Case and underscore boundaries are split first, then run-together tokens
    are segmented against the domain vocabulary.

    >>> split_name("deliverToStreet")
    ['deliver', 'to', 'street']
    >>> split_name("o_orderkey")
    ['o', 'order', 'key']
    """
    if not name:
        return []
    spaced = _NON_ALNUM.sub(" ", name)
    spaced = _CAMEL_BOUNDARY.sub(" ", spaced)
    spaced = _DIGIT_BOUNDARY.sub(" ", spaced)
    tokens = [token.lower() for token in spaced.split() if token]
    segmented: list[str] = []
    for token in tokens:
        segmented.extend(segment_token(token))
    return segmented


def normalize_tokens(name: str, expand_abbreviations: bool = True) -> list[str]:
    """Tokenise and (optionally) expand domain abbreviations."""
    tokens = split_name(name)
    if not expand_abbreviations:
        return tokens
    return [ABBREVIATIONS.get(token, token) for token in tokens]


def normalized_name(name: str) -> str:
    """The tokenised name re-joined without separators (used by edit-distance measures)."""
    return "".join(normalize_tokens(name))
