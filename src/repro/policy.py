"""Typed execution configuration for the session-first public API.

:class:`ExecutionPolicy` replaces the stringly-typed ``**options`` sprawl the
one-shot entry points used to forward three layers deep (``method=``,
``engine=``, ``optimize=``, ``parallel=``, ``strategy=``, ``cache_size=``,
...).  A policy is a frozen dataclass validated **eagerly** at construction:
an unknown method, engine, strategy or option name raises a ``ValueError``
that lists the valid choices (with a did-you-mean suggestion) instead of
surfacing as a bare ``KeyError``/``TypeError`` deep inside an evaluator
constructor.  The same validation serves three boundaries:

* ``ExecutionPolicy(...)`` / ``policy.with_overrides(...)`` — the typed path;
* ``ExecutionPolicy.from_options(method=..., **options)`` — the adapter the
  legacy ``evaluate``/``evaluate_many``/``evaluate_top_k`` shims run their
  keyword arguments through;
* per-call overrides on :meth:`repro.session.Session.query` and friends.

Every field applies to the evaluators that understand it (``strategy`` to
o-sharing/top-k, ``cache_size`` to the session plan cache and the batch
evaluator, ...); :meth:`evaluator_options` maps a policy onto the exact
constructor keywords of the selected method.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, fields, replace
from typing import Any

#: The ranked evaluation method (Section VII); not in the exact-answer
#: registry but a first-class policy choice for sessions.
TOP_K_METHOD = "top-k"


def _strategy_names():
    from repro.core.operator_selection import STRATEGIES

    return STRATEGIES


#: Algorithm-tuning fields that only certain methods read.  An *explicitly
#: passed* option from this table combined with an *explicitly chosen*
#: method that ignores it is rejected (the old one-shot API raised a bare
#: ``TypeError`` for the same mistake) — silently dropping it would let a
#: user believe they ran a different configuration.  The remaining fields
#: (``engine``, ``optimize``, ``parallel``, ``cache_size``, ``k``) configure
#: session-level machinery every method shares and are never rejected.
_METHOD_ONLY_OPTIONS: dict[str, tuple[str, ...]] = {
    "strategy": ("o-sharing", TOP_K_METHOD, "anytime"),
    "seed": ("o-sharing", TOP_K_METHOD, "anytime"),
    "prune_empty": ("o-sharing",),
    "exhaustive_planning": ("batch",),
    # Only the explicit-override path is gated: ExecutionPolicy(k=...) or
    # ExecutionPolicy(cache_size=...) as session-level defaults bypass
    # check_applicable (a session's plan cache serves batch AND e-mqo).
    "k": (TOP_K_METHOD,),
    "cache_size": ("batch", "e-mqo"),
    "budget": ("anytime",),
}


def check_applicable(method: str, option_names) -> None:
    """Reject explicitly-passed options the chosen ``method`` would ignore."""
    for name in option_names:
        applies_to = _METHOD_ONLY_OPTIONS.get(name)
        if applies_to is not None and method not in applies_to:
            raise ValueError(
                f"option {name!r} does not apply to method {method!r} "
                f"(valid for: {', '.join(applies_to)})"
            )


def _method_names() -> tuple[str, ...]:
    from repro.core.evaluators import EVALUATORS

    return tuple(sorted(EVALUATORS)) + (TOP_K_METHOD,)


def _engine_names() -> tuple[str, ...]:
    from repro.relational.executor import available_engines

    # Only the engines usable *here*: "vector" is absent without NumPy, so a
    # policy naming it fails eagerly with the same message shape as any other
    # unavailable choice instead of deep inside an executor constructor.
    return available_engines()


def suggest(name: str, choices) -> str:
    """A did-you-mean suffix for an unknown-name error (empty when no match)."""
    matches = difflib.get_close_matches(str(name), list(choices), n=1, cutoff=0.5)
    return f"; did you mean {matches[0]!r}?" if matches else ""


def validate_choice(kind: str, value: Any, choices) -> str:
    """``value`` if it names one of ``choices``, else a did-you-mean ValueError."""
    if not isinstance(value, str):
        raise ValueError(
            f"{kind} must be a string naming one of {sorted(choices)}, "
            f"got {value!r}"
        )
    key = value.lower()
    if key not in choices:
        raise ValueError(
            f"unknown {kind} {value!r}{suggest(value, choices)} "
            f"(valid choices: {sorted(choices)})"
        )
    return key


@dataclass(frozen=True)
class ExecutionPolicy:
    """How a :class:`~repro.session.Session` executes queries.

    Attributes
    ----------
    method:
        Evaluation algorithm: ``"basic"``, ``"e-basic"``, ``"e-mqo"``,
        ``"q-sharing"``, ``"o-sharing"`` (default), ``"batch"``,
        ``"anytime"`` (budgeted, interval answers) or ``"top-k"``
        (requires ``k``).
    engine:
        Relational execution engine: ``"columnar"`` (default), ``"row"``,
        ``"parallel"`` or ``"vector"`` (NumPy-backed; requires the optional
        NumPy extra).  Answers are byte-identical on every engine.
    optimize:
        Run every source plan through the cost-based optimizer (default on).
    strategy:
        o-sharing/top-k operator-selection strategy: ``"sef"`` (default),
        ``"snf"`` or ``"random"``.
    seed:
        Seed of the ``"random"`` strategy (ignored by the deterministic ones).
    prune_empty:
        o-sharing's empty-intermediate shortcut (disable only for ablations).
    parallel:
        Optional :class:`~repro.relational.parallel.ParallelConfig` tuning
        the parallel engine; the process-wide default applies when ``None``.
    cache_size:
        Bound of the session-owned plan cache (entries, LRU-evicted); also
        the batch evaluator's cache bound outside a session.
    exhaustive_planning:
        Use e-MQO's quadratic pairwise confirmation in the batch evaluator's
        global planning instead of linear occurrence counting.
    k:
        Answer count for ``"top-k"`` (and the default ``k`` of
        :meth:`~repro.session.Session.top_k`).
    budget:
        Exploration bound for ``"anytime"``: a
        :class:`~repro.anytime.budget.Budget` or a mapping of its fields
        (``mapping_limit``, ``eunit_limit``, ``wall_ms``).  ``None``
        (default) means unbounded — anytime then returns exact answers
        byte-identical to o-sharing.
    trace:
        Record a per-query span tree on the session's
        :class:`~repro.obs.trace.Tracer` (session → optimize → execute →
        per-operator spans; export via ``session.tracer``).  Off by default:
        tracing observes, it never changes answers or operator counts, but
        span bookkeeping costs a little wall-clock.
    metrics:
        Maintain the session's :class:`~repro.obs.metrics.MetricsRegistry`
        (per-stage latency histograms, cache/pool counters; snapshot via
        :meth:`~repro.session.Session.metrics`).  On by default — the
        registry is cheap (a few lock-guarded increments per call).
    slow_query_seconds:
        Threshold for :meth:`~repro.session.Session.serve`'s slow-query log:
        a served request slower than this is recorded on
        ``session.slow_queries`` and logged through the ``repro.session``
        logger.  ``None`` (default) disables the log.
    """

    method: str = "o-sharing"
    engine: str = "columnar"
    optimize: bool = True
    strategy: str = "sef"
    seed: int = 0
    prune_empty: bool = True
    parallel: Any = None
    cache_size: int = 4096
    exhaustive_planning: bool = False
    k: int | None = None
    budget: Any = None
    trace: bool = False
    metrics: bool = True
    slow_query_seconds: float | None = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "method", validate_choice("method", self.method, _method_names())
        )
        object.__setattr__(
            self, "engine", validate_choice("engine", self.engine, _engine_names())
        )
        if isinstance(self.strategy, str):
            object.__setattr__(
                self,
                "strategy",
                validate_choice("strategy", self.strategy, _strategy_names()),
            )
        if self.parallel is not None:
            from repro.relational.parallel import ParallelConfig

            if not isinstance(self.parallel, ParallelConfig):
                raise ValueError(
                    "parallel must be a repro.relational.parallel.ParallelConfig "
                    f"(or None), got {type(self.parallel).__name__}"
                )
        if not isinstance(self.cache_size, int) or self.cache_size <= 0:
            raise ValueError(f"cache_size must be a positive int, got {self.cache_size!r}")
        if self.k is not None and (not isinstance(self.k, int) or self.k <= 0):
            raise ValueError(f"k must be a positive int (or None), got {self.k!r}")
        if self.budget is not None:
            from repro.anytime.budget import Budget

            # Eager normalisation: a dict spec becomes a validated Budget
            # here, so an unknown budget field fails at policy construction
            # (did-you-mean included) rather than deep inside the evaluator.
            object.__setattr__(self, "budget", Budget.from_spec(self.budget))
        for flag in ("trace", "metrics"):
            if not isinstance(getattr(self, flag), bool):
                raise ValueError(
                    f"{flag} must be a bool, got {getattr(self, flag)!r}"
                )
        if self.slow_query_seconds is not None:
            threshold = self.slow_query_seconds
            if not isinstance(threshold, (int, float)) or isinstance(
                threshold, bool
            ) or threshold <= 0:
                raise ValueError(
                    "slow_query_seconds must be a positive number (or None), "
                    f"got {threshold!r}"
                )
        if self.method == TOP_K_METHOD and self.k is None:
            raise ValueError('method "top-k" requires k (e.g. ExecutionPolicy(method="top-k", k=10))')

    # ------------------------------------------------------------------ #
    @classmethod
    def option_names(cls) -> tuple[str, ...]:
        """The valid option/field names (shared by every validation boundary)."""
        return tuple(f.name for f in fields(cls))

    @classmethod
    def _build(
        cls, base: "ExecutionPolicy | None", options: dict[str, Any]
    ) -> "ExecutionPolicy":
        """Name-validated construction shared by every options boundary."""
        valid = cls.option_names()
        unknown = [name for name in options if name not in valid]
        if unknown:
            name = unknown[0]
            raise ValueError(
                f"unknown option {name!r}{suggest(name, valid)} "
                f"(valid options: {sorted(valid)})"
            )
        if base is None:
            return cls(**options)
        return replace(base, **options)

    @classmethod
    def from_options(cls, base: "ExecutionPolicy | None" = None, **options: Any) -> "ExecutionPolicy":
        """Build a policy from loose keyword options, validating every name.

        This is the boundary the legacy one-shot shims (and per-call
        overrides) run their ``**options`` through: an option that is not a
        policy field raises a ``ValueError`` listing the valid names with a
        did-you-mean suggestion, *before* anything is constructed.
        """
        policy = cls._build(base, options)
        if "method" in options:
            # An explicit method + an explicit option it ignores is a
            # misconfiguration, not a default to fall back on.
            check_applicable(policy.method, (n for n in options if n != "method"))
        return policy

    def with_overrides(self, **options: Any) -> "ExecutionPolicy":
        """A copy with ``options`` applied (same validation as construction)."""
        if not options:
            return self
        return type(self).from_options(self, **options)

    def with_defaults(self, **options: Any) -> "ExecutionPolicy":
        """A copy with *session-level configuration* applied.

        Names are validated exactly like :meth:`with_overrides`, but
        method-applicability is not enforced: a field set here (``k``,
        ``strategy``, ...) is a default for whichever later calls read it,
        not a per-call request — ``repro.connect(scenario, method="e-basic",
        k=10)`` legitimately configures ``k`` for future ``top_k()`` calls.
        """
        if not options:
            return self
        return type(self)._build(self, options)

    def describe(self) -> dict[str, Any]:
        """A JSON-safe rendering of every field (serving/introspection).

        The serving front end reports each tenant's policy defaults over the
        wire; ``parallel`` is the one field that is not a JSON scalar, so it
        is rendered as its ``repr`` (or ``None``).
        """
        described: dict[str, Any] = {}
        for field_ in fields(self):
            value = getattr(self, field_.name)
            if field_.name == "parallel" and value is not None:
                value = repr(value)
            elif field_.name == "budget" and value is not None:
                value = value.describe()
            described[field_.name] = value
        return described

    # ------------------------------------------------------------------ #
    def evaluator_options(self, method: str | None = None) -> dict[str, Any]:
        """Constructor keywords for ``method`` (default: this policy's method).

        Only the fields the selected evaluator understands are included, so
        the result can be splatted straight into the registry constructors.
        """
        method = self.method if method is None else method
        options: dict[str, Any] = {
            "engine": self.engine,
            "optimize": self.optimize,
            "parallel": self.parallel,
        }
        if method in ("o-sharing", TOP_K_METHOD, "anytime"):
            options["strategy"] = self.strategy
            options["seed"] = self.seed
        if method == "o-sharing":
            options["prune_empty"] = self.prune_empty
        if method == "anytime":
            options["budget"] = self.budget
        if method == "batch":
            options["cache_size"] = self.cache_size
            options["exhaustive_planning"] = self.exhaustive_planning
        return options
