"""Deterministic purchase-order data generation.

* :mod:`repro.datagen.source_schema` — the TPC-H-like source schema
  (8 relations, 46 attributes) that plays the role of the paper's TPC-H
  instance.
* :mod:`repro.datagen.generator` — a deterministic, scalable generator for
  the source instance.
* :mod:`repro.datagen.target_schemas` — the Excel/Noris/Paragon-like target
  schemas (``PO`` + ``Item`` relations each).
* :mod:`repro.datagen.scenario` — one-call construction of a complete
  matching scenario (schemas + instance + possible mappings).
"""

from repro.datagen.generator import GeneratorConfig, generate_source_instance
from repro.datagen.scenario import MatchingScenario, build_scenario
from repro.datagen.source_schema import source_schema
from repro.datagen.target_schemas import target_schema, TARGET_SCHEMA_NAMES

__all__ = [
    "GeneratorConfig",
    "generate_source_instance",
    "MatchingScenario",
    "build_scenario",
    "source_schema",
    "target_schema",
    "TARGET_SCHEMA_NAMES",
]
