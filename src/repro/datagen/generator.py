"""Deterministic generator for the purchase-order source instance.

The paper runs its evaluation on a 100 MB TPC-H instance (about one million
tuples).  A pure-Python engine cannot execute hundreds of source queries over
a million-tuple instance in benchmark time, so the generator exposes a
*scale* knob calibrated such that ``scale=1.0`` corresponds to the paper's
100 MB instance shape (same relative cardinalities between relations) at a
configurable base size.  All figures that sweep "database size (MB)" sweep
this knob; the *relative* trends are preserved.

Generation is fully deterministic for a given ``(config, scale)`` pair — the
RNG is seeded from the config seed — so tests and benchmarks are repeatable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.datagen import names
from repro.datagen.source_schema import source_schema
from repro.relational.database import Database
from repro.relational.relation import Relation


@dataclass(frozen=True)
class GeneratorConfig:
    """Cardinality and determinism knobs for the generator.

    ``orders_per_100mb`` sets how many orders ``scale=1.0`` produces; the
    remaining relations are sized proportionally, mirroring TPC-H ratios
    (four line items per order, ~one customer per five orders, ...).
    """

    seed: int = 7
    orders_per_100mb: int = 1200
    lineitems_per_order: int = 4
    customers_ratio: float = 0.25
    suppliers_ratio: float = 0.05
    parts_ratio: float = 0.20
    partsupp_per_part: int = 2

    def cardinalities(self, scale: float) -> dict[str, int]:
        """Row counts per relation for a given scale factor."""
        if scale <= 0:
            raise ValueError("scale must be positive")
        orders = max(int(self.orders_per_100mb * scale), 10)
        customers = max(int(orders * self.customers_ratio), 5)
        suppliers = max(int(orders * self.suppliers_ratio), 3)
        parts = max(int(orders * self.parts_ratio), 5)
        return {
            "region": len(names.REGION_NAMES),
            "nation": len(names.NATION_NAMES),
            "customer": customers,
            "supplier": suppliers,
            "part": parts,
            "partsupp": parts * self.partsupp_per_part,
            "orders": orders,
            "lineitem": orders * self.lineitems_per_order,
        }


def generate_source_instance(
    scale: float = 0.05,
    config: GeneratorConfig | None = None,
) -> Database:
    """Generate a complete source instance at the given scale factor.

    Parameters
    ----------
    scale:
        1.0 corresponds to the paper's 100 MB instance shape; the default of
        0.05 is a small instance suitable for unit tests and examples.
    config:
        Cardinality/seed configuration; defaults to :class:`GeneratorConfig`.
    """
    config = config or GeneratorConfig()
    rng = random.Random((config.seed, round(scale, 6)).__hash__())
    schema = source_schema()
    cards = config.cardinalities(scale)
    database = Database(schema)

    def pick(pool: list[str]) -> str:
        """Skewed choice: the first pool element (the query constants of Table
        III all sit at position 0) is over-represented, mirroring the skewed
        value distributions of TPC-H text columns and keeping the paper's
        point selections satisfiable at small scales."""
        if rng.random() < 0.25:
            return pool[0]
        return rng.choice(pool)

    # -- region / nation ------------------------------------------------- #
    region_rows = [(i, name) for i, name in enumerate(names.REGION_NAMES)]
    database.set_relation(
        "region", Relation.from_schema(schema.relation("region"), region_rows)
    )
    nation_rows = [
        (i, name, i % len(names.REGION_NAMES)) for i, name in enumerate(names.NATION_NAMES)
    ]
    database.set_relation(
        "nation", Relation.from_schema(schema.relation("nation"), nation_rows)
    )

    # -- customer ---------------------------------------------------------- #
    customer_rows = []
    for key in range(1, cards["customer"] + 1):
        customer_rows.append(
            (
                key,
                pick(names.COMPANY_NAMES),
                pick(names.PERSON_NAMES),
                pick(names.PHONE_NUMBERS),
                pick(names.PERSON_NAMES),
                pick(names.STREET_NAMES),
                pick(names.STREET_NAMES),
                rng.randrange(len(names.NATION_NAMES)),
                round(rng.uniform(-500.0, 9000.0), 2),
            )
        )
    database.set_relation(
        "customer", Relation.from_schema(schema.relation("customer"), customer_rows)
    )

    # -- supplier ---------------------------------------------------------- #
    supplier_rows = []
    for key in range(1, cards["supplier"] + 1):
        supplier_rows.append(
            (
                key,
                pick(names.COMPANY_NAMES),
                pick(names.PERSON_NAMES),
                pick(names.PHONE_NUMBERS),
                pick(names.STREET_NAMES),
                rng.randrange(len(names.NATION_NAMES)),
            )
        )
    database.set_relation(
        "supplier", Relation.from_schema(schema.relation("supplier"), supplier_rows)
    )

    # -- part / partsupp ----------------------------------------------------- #
    part_rows = []
    for key in range(1, cards["part"] + 1):
        part_rows.append(
            (
                key,
                f"{rng.choice(names.PART_BRANDS).lower()} {rng.choice(names.PART_NAMES)}",
                rng.choice(names.PART_BRANDS),
                round(rng.uniform(1.0, 500.0), 2),
                rng.randint(1, 50),
            )
        )
    database.set_relation("part", Relation.from_schema(schema.relation("part"), part_rows))

    partsupp_rows = []
    for part_key in range(1, cards["part"] + 1):
        for _ in range(max(1, cards["partsupp"] // max(cards["part"], 1))):
            partsupp_rows.append(
                (
                    part_key,
                    rng.randint(1, cards["supplier"]),
                    round(rng.uniform(1.0, 300.0), 2),
                    rng.randint(0, 1000),
                )
            )
    database.set_relation(
        "partsupp", Relation.from_schema(schema.relation("partsupp"), partsupp_rows)
    )

    # -- orders ---------------------------------------------------------- #
    order_rows = []
    for key in range(1, cards["orders"] + 1):
        order_rows.append(
            (
                key,
                rng.randint(1, cards["customer"]),
                rng.choice(names.ORDER_STATUSES),
                round(rng.uniform(50.0, 30000.0), 2),
                f"199{rng.randint(2, 8)}-{rng.randint(1, 12):02d}-{rng.randint(1, 28):02d}",
                rng.randint(1, 5),
                pick(names.PERSON_NAMES),
                rng.choice(names.CLERK_NAMES),
            )
        )
    database.set_relation(
        "orders", Relation.from_schema(schema.relation("orders"), order_rows)
    )

    # -- lineitem ---------------------------------------------------------- #
    lineitem_rows = []
    line_counter = 0
    for order_key in range(1, cards["orders"] + 1):
        for line_number in range(1, config.lineitems_per_order + 1):
            line_counter += 1
            lineitem_rows.append(
                (
                    order_key,
                    names.item_number(line_counter + rng.randint(0, 20)),
                    rng.randint(1, cards["supplier"]),
                    line_number,
                    rng.randint(1, 10),
                    round(rng.uniform(5.0, 2000.0), 2),
                    f"199{rng.randint(2, 8)}-{rng.randint(1, 12):02d}-{rng.randint(1, 28):02d}",
                    pick(names.STREET_NAMES),
                    pick(names.PHONE_NUMBERS),
                )
            )
    database.set_relation(
        "lineitem", Relation.from_schema(schema.relation("lineitem"), lineitem_rows)
    )
    return database


def approximate_size_mb(database: Database) -> float:
    """A rough "megabytes" figure for reporting (100 bytes per row heuristic)."""
    return database.total_rows * 100.0 / 1_000_000.0
