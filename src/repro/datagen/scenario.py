"""One-call construction of a complete matching scenario.

A *scenario* bundles everything a probabilistic query needs:

* the source schema and a generated source instance,
* a target schema,
* the matcher's result, and
* the set of possible mappings with probabilities.

This is the layer the examples, tests and benchmarks build on; it corresponds
to the experiment setup of Section VIII-A of the paper (COMA++ matching of a
TPC-H instance against Excel/Noris/Paragon, h possible mappings from a
bipartite matching algorithm).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.core.links import SchemaLinks
from repro.datagen.generator import GeneratorConfig, generate_source_instance
from repro.datagen.source_schema import source_links, source_schema
from repro.datagen.target_schemas import target_schema
from repro.matching.hungarian import scipy_assignment_solver
from repro.matching.mappings import MappingSet, generate_possible_mappings
from repro.matching.matcher import CompositeMatcher, MatchResult
from repro.relational.database import Database
from repro.relational.schema import DatabaseSchema

#: Default matcher threshold used by scenarios.  Chosen so that the query
#: attributes of Table III all have at least one candidate and the ambiguous
#: ones (telephone, orderNum, deliverToStreet, ...) have several.
SCENARIO_THRESHOLD = 0.58

#: Weight of the matcher's deterministic ensemble-noise component (stand-in
#: for COMA++'s structural/instance matchers) in scenario matchings.  It is
#: what makes the possible mappings disagree on many attributes, which is the
#: regime the paper's evaluation exercises.
SCENARIO_ENSEMBLE_NOISE = 0.3


@dataclass
class MatchingScenario:
    """A fully-built experiment scenario."""

    source_schema: DatabaseSchema
    target_schema: DatabaseSchema
    database: Database
    match_result: MatchResult
    mappings: MappingSet
    scale: float
    links: SchemaLinks | None = None

    @property
    def h(self) -> int:
        """Number of possible mappings."""
        return self.mappings.size

    def with_mappings(self, h: int) -> "MatchingScenario":
        """The same scenario restricted to the first ``h`` mappings (re-normalised)."""
        return MatchingScenario(
            source_schema=self.source_schema,
            target_schema=self.target_schema,
            database=self.database,
            match_result=self.match_result,
            mappings=self.mappings.subset(h),
            scale=self.scale,
            links=self.links,
        )

    def with_database(self, database: Database, scale: float) -> "MatchingScenario":
        """The same matching with a different source instance (database-size sweeps)."""
        return MatchingScenario(
            source_schema=self.source_schema,
            target_schema=self.target_schema,
            database=database,
            match_result=self.match_result,
            mappings=self.mappings,
            scale=scale,
            links=self.links,
        )

    def describe(self) -> str:
        """A short human-readable summary used by the examples."""
        return (
            f"scenario: {self.source_schema.name} -> {self.target_schema.name}, "
            f"{self.database.total_rows} source rows, h={self.h} mappings, "
            f"o-ratio={self.mappings.o_ratio():.2f}"
        )


def build_scenario(
    target: str = "Excel",
    h: int = 100,
    scale: float = 0.05,
    threshold: float = SCENARIO_THRESHOLD,
    seed: int = 7,
    use_scipy: bool = True,
) -> MatchingScenario:
    """Build a complete scenario.

    Parameters
    ----------
    target:
        Target schema name: ``"Excel"``, ``"Noris"`` or ``"Paragon"``.
    h:
        Number of possible mappings to generate (the paper uses 100 by
        default and sweeps 100-500).
    scale:
        Source-instance scale factor (1.0 ≈ the paper's 100 MB shape).
    threshold:
        Matcher similarity threshold for candidate correspondences.
    seed:
        Data-generation seed.
    use_scipy:
        Use scipy's assignment solver inside Murty's enumeration when
        available (purely a speed-up; results are identical).
    """
    source = source_schema()
    target_db_schema = target_schema(target)
    database = generate_source_instance(scale=scale, config=GeneratorConfig(seed=seed))
    match_result, mappings = _match_and_mappings(target, h, threshold, use_scipy)
    return MatchingScenario(
        source_schema=source,
        target_schema=target_db_schema,
        database=database,
        match_result=match_result,
        mappings=mappings,
        scale=scale,
        links=source_links(),
    )


@lru_cache(maxsize=16)
def _match_and_mappings(
    target: str,
    h: int,
    threshold: float,
    use_scipy: bool,
) -> tuple[MatchResult, MappingSet]:
    """Cached matching + mapping generation (shared across scenario variants)."""
    source = source_schema()
    target_db_schema = target_schema(target)
    matcher = CompositeMatcher(
        threshold=threshold,
        ensemble_noise=SCENARIO_ENSEMBLE_NOISE,
        compress=True,
    )
    match_result = matcher.match(source, target_db_schema)
    solver = scipy_assignment_solver() if use_scipy else None
    mappings = generate_possible_mappings(match_result, h, solver=solver)
    return match_result, mappings
