"""Deterministic value pools used by the data generator.

The pools deliberately contain the constants used by the paper's target
queries (Table III) — ``Mary``, ``ABC``, ``Central``, ``335-1736``,
``00001`` — so that selections on those constants return non-empty results
for a reasonable fraction of the possible mappings.
"""

from __future__ import annotations

#: Contact / person names (includes the query constant ``Mary``).
PERSON_NAMES = [
    "Mary",
    "Alice",
    "Bob",
    "Cindy",
    "David",
    "Eva",
    "Frank",
    "Grace",
    "Henry",
    "Irene",
    "Jack",
    "Karen",
    "Leo",
    "Nina",
    "Oscar",
    "Paula",
]

#: Company names (includes the query constant ``ABC``).
COMPANY_NAMES = [
    "ABC",
    "Acme Corp",
    "Globex",
    "Initech",
    "Umbrella",
    "Stark Industries",
    "Wayne Enterprises",
    "Wonka",
    "Tyrell",
    "Cyberdyne",
    "Aperture",
    "Hooli",
]

#: Street names (includes the query constant ``Central``).
STREET_NAMES = [
    "Central",
    "Main Street",
    "Broadway",
    "Queens Road",
    "Pokfulam Road",
    "High Street",
    "Garden Road",
    "Nathan Road",
    "Hennessy Road",
    "Des Voeux Road",
]

#: City names.
CITY_NAMES = [
    "Hong Kong",
    "Shenzhen",
    "London",
    "New York",
    "Paris",
    "Tokyo",
    "Singapore",
    "Sydney",
    "Berlin",
    "Toronto",
]

#: Telephone numbers (includes the query constant ``335-1736``).
PHONE_NUMBERS = [
    "335-1736",
    "212-5500",
    "415-0199",
    "646-3321",
    "852-2859",
    "755-8600",
    "020-7946",
    "030-1234",
    "090-5678",
    "613-4455",
    "917-8642",
    "331-2244",
]

#: Nations and regions (TPC-H style, trimmed).
NATION_NAMES = [
    "CHINA",
    "JAPAN",
    "INDIA",
    "FRANCE",
    "GERMANY",
    "UNITED KINGDOM",
    "UNITED STATES",
    "CANADA",
    "BRAZIL",
    "AUSTRALIA",
    "RUSSIA",
    "EGYPT",
    "KENYA",
    "PERU",
    "VIETNAM",
]

REGION_NAMES = ["ASIA", "EUROPE", "AMERICA", "AFRICA", "OCEANIA"]

#: Part / item names.
PART_NAMES = [
    "widget",
    "sprocket",
    "gear",
    "bolt",
    "bracket",
    "valve",
    "gasket",
    "bearing",
    "spring",
    "flange",
    "coupling",
    "rivet",
]

PART_BRANDS = ["Brand#11", "Brand#12", "Brand#21", "Brand#22", "Brand#31", "Brand#32"]

ORDER_STATUSES = ["O", "F", "P"]

CLERK_NAMES = [f"Clerk#{i:03d}" for i in range(1, 21)]

#: Item numbers are zero-padded strings; ``00001`` is used by several queries.
def item_number(value: int, modulo: int = 50) -> str:
    """Zero-padded cyclic item number (guarantees ``00001`` occurs regularly)."""
    return f"{(value % modulo) + 1:05d}"
