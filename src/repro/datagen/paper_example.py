"""The paper's running example (Figures 1-3).

The example matches a *Customer / C_Order / Nation* source schema against a
*Person / Order* target schema.  Five possible mappings ``m1..m5`` with
probabilities 0.3, 0.2, 0.2, 0.2, 0.1 capture the matching uncertainty, and
the Customer relation holds the three tuples of Figure 2.  The module exists
so that tests and examples can check the library against the answers the
paper works out by hand:

* ``π_addr σ_phone='123' Person``  →  {(aaa, 0.5), (hk, 0.5)}  (query q0),
* ``π_phone σ_addr='aaa' Person``  →  {(123, 0.5), (456, 0.8), (789, 0.2)}
  (the Section III-B example),
* ``π_pname σ_addr='abc' Person`` partitions the mappings into
  {m1, m2}, {m3, m4}, {m5} (the q-sharing example of Section IV).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.links import SchemaLinks
from repro.core.target_query import TargetQuery
from repro.matching.mappings import Mapping, MappingSet
from repro.relational.algebra import PlanNode, Product, Project, Scan, Select
from repro.relational.database import Database
from repro.relational.expressions import col
from repro.relational.predicates import Equals
from repro.relational.relation import Relation
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.relational.types import DataType

_S = DataType.STRING
_I = DataType.INTEGER
_F = DataType.FLOAT


def example_source_schema() -> DatabaseSchema:
    """The source schema of Figure 1 (Customer, C_Order, Nation)."""
    customer = RelationSchema.build(
        "Customer",
        [
            ("cid", _I, "customer id"),
            ("cname", _S, "customer name"),
            ("ophone", _S, "office phone"),
            ("hphone", _S, "home phone"),
            ("mobile", _S, "mobile phone"),
            ("oaddr", _S, "office address"),
            ("haddr", _S, "home address"),
            ("nid", _I, "nation id"),
        ],
    )
    c_order = RelationSchema.build(
        "C_Order",
        [
            ("oid", _I, "order id"),
            ("cid", _I, "ordering customer"),
            ("amount", _F, "order amount"),
        ],
    )
    nation = RelationSchema.build(
        "Nation",
        [
            ("nid", _I, "nation id"),
            ("name", _S, "nation name"),
        ],
    )
    return DatabaseSchema("ExampleSource", [customer, c_order, nation])


def example_target_schema() -> DatabaseSchema:
    """The target schema of Figure 1 (Person, Order)."""
    person = RelationSchema.build(
        "Person",
        [
            ("pname", _S, "person name"),
            ("phone", _S, "phone"),
            ("addr", _S, "address"),
            ("nation", _S, "nation"),
            ("gender", _S, "gender"),
        ],
    )
    order = RelationSchema.build(
        "Order",
        [
            ("sname", _S, "seller name"),
            ("item", _S, "item"),
            ("status", _S, "status"),
            ("price", _F, "price"),
            ("total", _F, "total"),
        ],
    )
    return DatabaseSchema("ExampleTarget", [person, order])


def example_database() -> Database:
    """The source instance of Figure 2 (three Customer tuples) plus small extras."""
    schema = example_source_schema()
    database = Database(schema)
    customer_rows = [
        (1, "Alice", "123", "789", "555", "aaa", "hk", 1),
        (2, "Bob", "456", "123", "556", "bbb", "hk", 2),
        (3, "Cindy", "456", "789", "557", "aaa", "aaa", 1),
    ]
    database.set_relation(
        "Customer", Relation.from_schema(schema.relation("Customer"), customer_rows)
    )
    c_order_rows = [
        (10, 1, 120.0),
        (11, 2, 80.0),
    ]
    database.set_relation(
        "C_Order", Relation.from_schema(schema.relation("C_Order"), c_order_rows)
    )
    nation_rows = [
        (1, "China"),
        (2, "Japan"),
    ]
    database.set_relation(
        "Nation", Relation.from_schema(schema.relation("Nation"), nation_rows)
    )
    return database


def example_links() -> SchemaLinks:
    """Key/foreign-key links of the example source schema."""
    return SchemaLinks.from_pairs(
        [
            ("Customer", "nid", "Nation", "nid"),
            ("C_Order", "cid", "Customer", "cid"),
        ]
    )


def example_mappings() -> MappingSet:
    """The five possible mappings of Figure 3 with their probabilities."""
    common_nation = {"Person.nation": "Nation.name"}
    mappings = [
        Mapping(
            mapping_id=1,
            correspondences={
                "Person.pname": "Customer.cname",
                "Person.phone": "Customer.ophone",
                "Person.addr": "Customer.oaddr",
                "Order.total": "C_Order.amount",
                **common_nation,
            },
            score=3.0,
            probability=0.3,
        ),
        Mapping(
            mapping_id=2,
            correspondences={
                "Person.pname": "Customer.cname",
                "Person.phone": "Customer.ophone",
                "Person.addr": "Customer.oaddr",
                "Order.total": "C_Order.amount",
                **common_nation,
            },
            score=2.0,
            probability=0.2,
        ),
        Mapping(
            mapping_id=3,
            correspondences={
                "Person.pname": "Customer.cname",
                "Person.phone": "Customer.ophone",
                "Person.addr": "Customer.haddr",
                "Order.total": "C_Order.amount",
                **common_nation,
            },
            score=2.0,
            probability=0.2,
        ),
        Mapping(
            mapping_id=4,
            correspondences={
                "Person.pname": "Customer.cname",
                "Person.phone": "Customer.hphone",
                "Person.addr": "Customer.haddr",
                "Order.total": "C_Order.amount",
                **common_nation,
            },
            score=2.0,
            probability=0.2,
        ),
        Mapping(
            mapping_id=5,
            correspondences={
                "Person.phone": "Customer.ophone",
                "Person.addr": "Customer.haddr",
                "Order.total": "C_Order.amount",
                "Order.item": "Nation.name",
                **common_nation,
            },
            score=1.0,
            probability=0.1,
        ),
    ]
    return MappingSet(mappings)


@dataclass
class PaperExample:
    """The complete Figure 1-3 setup bundled for tests and examples."""

    source_schema: DatabaseSchema
    target_schema: DatabaseSchema
    database: Database
    mappings: MappingSet
    links: SchemaLinks

    def query(self, plan: PlanNode, name: str = "") -> TargetQuery:
        """Wrap a plan over the example target schema into a :class:`TargetQuery`."""
        return TargetQuery(plan, self.target_schema, name=name)

    # -- the queries the paper discusses -------------------------------- #
    def q0(self) -> TargetQuery:
        """``π_addr σ_phone='123' Person`` (the introduction's q0)."""
        plan = Project(Select(Scan("Person"), Equals(col("phone"), "123")), [col("addr")])
        return self.query(plan, name="q0")

    def q_phone_by_addr(self) -> TargetQuery:
        """``π_phone σ_addr='aaa' Person`` (the Section III-B example)."""
        plan = Project(Select(Scan("Person"), Equals(col("addr"), "aaa")), [col("phone")])
        return self.query(plan, name="q-phone")

    def q1(self) -> TargetQuery:
        """``π_pname σ_addr='abc' Person`` (the q-sharing example, Section IV)."""
        plan = Project(Select(Scan("Person"), Equals(col("addr"), "abc")), [col("pname")])
        return self.query(plan, name="q1")

    def q2(self) -> TargetQuery:
        """``(σ_addr='hk' σ_phone='123' Person) × Order`` (the o-sharing example)."""
        plan = Product(
            Select(
                Select(Scan("Person"), Equals(col("phone"), "123")),
                Equals(col("addr"), "hk"),
            ),
            Scan("Order"),
        )
        return self.query(plan, name="q2")


def build_paper_example() -> PaperExample:
    """Assemble the complete running example of Figures 1-3."""
    return PaperExample(
        source_schema=example_source_schema(),
        target_schema=example_target_schema(),
        database=example_database(),
        mappings=example_mappings(),
        links=example_links(),
    )
