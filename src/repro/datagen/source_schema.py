"""The TPC-H-like purchase-order source schema.

The paper uses a 100 MB TPC-H instance whose schema has 8 relations and 46
attributes.  This module defines an equivalent purchase-order schema of the
same shape.  Attribute names are chosen so that the name-based matcher finds
*plausible and ambiguous* candidates for the target-query attributes — e.g.
``telephone`` matches both ``customer.c_phone`` and ``supplier.s_phone`` —
because that ambiguity is exactly what makes the possible mappings differ and
what the paper's sharing algorithms exploit.
"""

from __future__ import annotations

from functools import lru_cache

from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.relational.types import DataType

SOURCE_SCHEMA_NAME = "SourcePO"

_I = DataType.INTEGER
_F = DataType.FLOAT
_S = DataType.STRING
_D = DataType.DATE


@lru_cache(maxsize=1)
def source_schema() -> DatabaseSchema:
    """Build the 8-relation, 46-attribute source schema."""
    region = RelationSchema.build(
        "region",
        [
            ("r_regionkey", _I, "region key"),
            ("r_name", _S, "region name"),
        ],
    )
    nation = RelationSchema.build(
        "nation",
        [
            ("n_nationkey", _I, "nation key"),
            ("n_name", _S, "nation name"),
            ("n_regionkey", _I, "owning region"),
        ],
    )
    customer = RelationSchema.build(
        "customer",
        [
            ("c_custkey", _I, "customer key"),
            ("c_company", _S, "customer company name"),
            ("c_contactname", _S, "contact person"),
            ("c_phone", _S, "office telephone"),
            ("c_deliverto", _S, "delivery recipient"),
            ("c_invoiceaddress", _S, "invoice address"),
            ("c_deliverstreet", _S, "delivery street"),
            ("c_nationkey", _I, "nation of the customer"),
            ("c_balance", _F, "account balance"),
        ],
    )
    supplier = RelationSchema.build(
        "supplier",
        [
            ("s_suppkey", _I, "supplier key"),
            ("s_company", _S, "supplier company name"),
            ("s_contactname", _S, "contact person"),
            ("s_phone", _S, "supplier telephone"),
            ("s_address", _S, "supplier address"),
            ("s_nationkey", _I, "nation of the supplier"),
        ],
    )
    part = RelationSchema.build(
        "part",
        [
            ("p_partkey", _I, "part key"),
            ("p_itemname", _S, "item name"),
            ("p_brand", _S, "brand"),
            ("p_unitprice", _F, "unit retail price"),
            ("p_size", _I, "size"),
        ],
    )
    partsupp = RelationSchema.build(
        "partsupp",
        [
            ("ps_partkey", _I, "part key"),
            ("ps_suppkey", _I, "supplier key"),
            ("ps_supplycost", _F, "supply cost"),
            ("ps_availableqty", _I, "available quantity"),
        ],
    )
    orders = RelationSchema.build(
        "orders",
        [
            ("o_orderkey", _I, "order key / order number"),
            ("o_custkey", _I, "ordering customer"),
            ("o_orderstatus", _S, "order status"),
            ("o_totalprice", _F, "total price"),
            ("o_orderdate", _D, "order date"),
            ("o_priority", _I, "order priority (1-5)"),
            ("o_invoiceto", _S, "invoice recipient"),
            ("o_clerk", _S, "clerk handling the order"),
        ],
    )
    lineitem = RelationSchema.build(
        "lineitem",
        [
            ("l_orderkey", _I, "owning order"),
            ("l_itemnum", _S, "item number"),
            ("l_suppkey", _I, "supplier"),
            ("l_linenumber", _I, "line number within the order"),
            ("l_quantity", _I, "ordered quantity"),
            ("l_price", _F, "line price"),
            ("l_shipdate", _D, "ship date"),
            ("l_shipstreet", _S, "ship-to street"),
            ("l_shipphone", _S, "ship-to telephone"),
        ],
    )
    schema = DatabaseSchema(
        SOURCE_SCHEMA_NAME,
        [region, nation, customer, supplier, part, partsupp, orders, lineitem],
    )
    return schema


def source_attribute_count() -> int:
    """Total attribute count (the paper's TPC-H schema has 46)."""
    return source_schema().attribute_count


#: Key/foreign-key pairs of the source schema, used by reformulation to join
#: (rather than cross) source relations that together cover one target alias.
SOURCE_LINK_PAIRS: tuple[tuple[str, str, str, str], ...] = (
    ("nation", "n_regionkey", "region", "r_regionkey"),
    ("customer", "c_nationkey", "nation", "n_nationkey"),
    ("supplier", "s_nationkey", "nation", "n_nationkey"),
    ("orders", "o_custkey", "customer", "c_custkey"),
    ("lineitem", "l_orderkey", "orders", "o_orderkey"),
    ("lineitem", "l_suppkey", "supplier", "s_suppkey"),
    ("partsupp", "ps_partkey", "part", "p_partkey"),
    ("partsupp", "ps_suppkey", "supplier", "s_suppkey"),
)


@lru_cache(maxsize=1)
def source_links():
    """The :class:`~repro.core.links.SchemaLinks` of the source schema."""
    from repro.core.links import SchemaLinks

    return SchemaLinks.from_pairs(SOURCE_LINK_PAIRS)
