"""Target purchase-order schemas: Excel, Noris and Paragon look-alikes.

The paper evaluates against three purchase-order target schemas distributed
with COMA++ (Excel, Noris, Paragon — 48, 66 and 69 attributes), converted to
a relational form with two relations, ``PO`` and ``Item``.  The schemas below
follow that structure and naming style; the attributes referenced by the
paper's queries (Table III) — ``telephone``, ``priority``, ``invoiceTo``,
``quantity``, ``itemNum``, ``orderNum``, ``company``, ``deliverToStreet``,
``deliverTo``, ``unitPrice``, ``billTo``, ``shipToAddress``, ``shipToPhone``,
``billToAddress``, ``price`` — are present verbatim in the relevant schema.
"""

from __future__ import annotations

from functools import lru_cache

from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.relational.types import DataType

_I = DataType.INTEGER
_F = DataType.FLOAT
_S = DataType.STRING
_D = DataType.DATE

#: The schema names accepted by :func:`target_schema`.
TARGET_SCHEMA_NAMES = ("Excel", "Noris", "Paragon")


def _excel() -> DatabaseSchema:
    po = RelationSchema.build(
        "PO",
        [
            ("orderNum", _S, "order number"),
            ("orderDate", _D, "order date"),
            ("status", _S, "order status"),
            ("priority", _I, "order priority"),
            ("company", _S, "ordering company"),
            ("invoiceTo", _S, "invoice recipient"),
            ("telephone", _S, "contact telephone"),
            ("mobilePhone", _S, "contact mobile"),
            ("contactName", _S, "contact person"),
            ("deliverTo", _S, "delivery recipient"),
            ("deliverToStreet", _S, "delivery street"),
            ("deliverToCity", _S, "delivery city"),
            ("deliverToNation", _S, "delivery nation"),
            ("invoiceAddress", _S, "invoice address"),
            ("totalAmount", _F, "order total"),
            ("discount", _F, "order discount"),
            ("currency", _S, "currency"),
            ("paymentTerms", _S, "payment terms"),
            ("clerk", _S, "clerk"),
            ("remarks", _S, "free-text remarks"),
            ("customerKey", _I, "customer identifier"),
            ("customerBalance", _F, "customer account balance"),
            ("region", _S, "customer region"),
            ("nation", _S, "customer nation"),
        ],
    )
    item = RelationSchema.build(
        "Item",
        [
            ("itemNum", _S, "item number"),
            ("orderNum", _S, "owning order number"),
            ("itemName", _S, "item name"),
            ("brand", _S, "brand"),
            ("quantity", _I, "ordered quantity"),
            ("unitPrice", _F, "unit price"),
            ("extendedPrice", _F, "extended price"),
            ("supplierCompany", _S, "supplier company"),
            ("supplierPhone", _S, "supplier telephone"),
            ("supplierAddress", _S, "supplier address"),
            ("shipDate", _D, "ship date"),
            ("shipStreet", _S, "ship street"),
            ("lineNumber", _I, "line number"),
            ("availableQty", _I, "available quantity"),
            ("supplyCost", _F, "supply cost"),
            ("itemSize", _I, "item size"),
            ("taxAmount", _F, "tax amount"),
            ("itemStatus", _S, "item status"),
            ("itemComment", _S, "item comment"),
            ("packaging", _S, "packaging"),
            ("weight", _F, "weight"),
            ("warehouse", _S, "warehouse"),
            ("deliveryWindow", _S, "delivery window"),
            ("returnPolicy", _S, "return policy"),
        ],
    )
    return DatabaseSchema("Excel", [po, item])


def _noris() -> DatabaseSchema:
    po = RelationSchema.build(
        "PO",
        [
            ("orderNum", _S, "purchase order number"),
            ("orderIssueDate", _D, "issue date"),
            ("orderStatusCode", _S, "status code"),
            ("orderPriorityLevel", _I, "priority level"),
            ("buyerCompany", _S, "buyer company"),
            ("invoiceTo", _S, "invoice recipient"),
            ("invoiceStreetAddress", _S, "invoice street address"),
            ("telephone", _S, "buyer telephone"),
            ("faxNumber", _S, "fax number"),
            ("contactPerson", _S, "contact person"),
            ("deliverTo", _S, "delivery recipient"),
            ("deliverToStreet", _S, "delivery street"),
            ("deliverToCity", _S, "delivery city"),
            ("deliverToCountry", _S, "delivery country"),
            ("deliverToPostcode", _S, "delivery postcode"),
            ("orderTotalValue", _F, "order value"),
            ("orderCurrency", _S, "currency"),
            ("orderClerkName", _S, "clerk"),
            ("customerAccountKey", _I, "customer account"),
            ("customerCreditBalance", _F, "credit balance"),
            ("salesRegion", _S, "sales region"),
            ("salesNation", _S, "sales nation"),
            ("shippingMode", _S, "shipping mode"),
            ("specialInstructions", _S, "special instructions"),
            ("approvalStatus", _S, "approval status"),
            ("revisionNumber", _I, "revision number"),
        ],
    )
    item = RelationSchema.build(
        "Item",
        [
            ("itemNum", _S, "item number"),
            ("orderNum", _S, "owning order"),
            ("articleName", _S, "article name"),
            ("articleBrand", _S, "article brand"),
            ("orderedQuantity", _I, "ordered quantity"),
            ("unitPrice", _F, "unit price"),
            ("lineTotalPrice", _F, "line total"),
            ("vendorCompany", _S, "vendor company"),
            ("vendorPhone", _S, "vendor phone"),
            ("vendorStreetAddress", _S, "vendor address"),
            ("requestedShipDate", _D, "requested ship date"),
            ("shipToStreet", _S, "ship-to street"),
            ("lineSequenceNumber", _I, "line sequence"),
            ("stockAvailableQuantity", _I, "stock quantity"),
            ("procurementCost", _F, "procurement cost"),
            ("articleSize", _I, "article size"),
            ("taxRatePercent", _F, "tax rate"),
            ("lineStatusCode", _S, "line status"),
            ("inspectionRequired", _S, "inspection flag"),
            ("countryOfOrigin", _S, "country of origin"),
        ],
    )
    return DatabaseSchema("Noris", [po, item])


def _paragon() -> DatabaseSchema:
    po = RelationSchema.build(
        "PO",
        [
            ("orderNum", _S, "order number"),
            ("orderCreationDate", _D, "creation date"),
            ("statusFlag", _S, "status flag"),
            ("priorityCode", _I, "priority code"),
            ("purchasingCompany", _S, "purchasing company"),
            ("invoiceTo", _S, "invoice recipient"),
            ("billTo", _S, "billing recipient"),
            ("billToAddress", _S, "billing address"),
            ("telephone", _S, "telephone"),
            ("shipToPhone", _S, "ship-to telephone"),
            ("shipToAddress", _S, "ship-to address"),
            ("shipToStreet", _S, "ship-to street"),
            ("shipToCity", _S, "ship-to city"),
            ("shipToCountry", _S, "ship-to country"),
            ("grandTotal", _F, "grand total"),
            ("currencyCode", _S, "currency"),
            ("purchasingAgent", _S, "purchasing agent"),
            ("accountNumber", _I, "account number"),
            ("accountBalance", _F, "account balance"),
            ("tradeRegion", _S, "trade region"),
            ("tradeNation", _S, "trade nation"),
            ("freightTerms", _S, "freight terms"),
            ("paymentDueDate", _D, "payment due date"),
            ("authorizedBy", _S, "authorised by"),
            ("documentRevision", _I, "document revision"),
        ],
    )
    item = RelationSchema.build(
        "Item",
        [
            ("itemNum", _S, "item number"),
            ("orderNum", _S, "owning order"),
            ("productName", _S, "product name"),
            ("productBrand", _S, "product brand"),
            ("quantityOrdered", _I, "quantity ordered"),
            ("price", _F, "price"),
            ("extendedAmount", _F, "extended amount"),
            ("supplierCompany", _S, "supplier company"),
            ("supplierTelephone", _S, "supplier telephone"),
            ("supplierAddress", _S, "supplier address"),
            ("promisedShipDate", _D, "promised ship date"),
            ("shipmentStreet", _S, "shipment street"),
            ("itemLineNumber", _I, "line number"),
            ("quantityAvailable", _I, "quantity available"),
            ("unitCost", _F, "unit cost"),
            ("productSize", _I, "product size"),
            ("taxValue", _F, "tax value"),
            ("lineState", _S, "line state"),
            ("serialNumbers", _S, "serial numbers"),
            ("warrantyMonths", _I, "warranty months"),
            ("hazardClass", _S, "hazard class"),
        ],
    )
    return DatabaseSchema("Paragon", [po, item])


_BUILDERS = {"Excel": _excel, "Noris": _noris, "Paragon": _paragon}


@lru_cache(maxsize=None)
def target_schema(name: str = "Excel") -> DatabaseSchema:
    """Return one of the three target schemas by (case-insensitive) name."""
    for candidate, builder in _BUILDERS.items():
        if candidate.lower() == name.lower():
            return builder()
    raise KeyError(
        f"unknown target schema {name!r}; available: {', '.join(TARGET_SCHEMA_NAMES)}"
    )
