"""repro — a reproduction of *Evaluating Probabilistic Queries over Uncertain
Matching* (Cheng, Gong, Cheung and Cheng, ICDE 2012).

The library evaluates probabilistic queries issued against a *target* schema
whose relationship to a *source* database is captured by a set of *possible
mappings* with probabilities.  It contains:

* an in-memory relational engine (:mod:`repro.relational`),
* a schema-matching substrate producing possible mappings
  (:mod:`repro.matching`),
* a deterministic purchase-order data generator and ready-made experiment
  scenarios (:mod:`repro.datagen`),
* the paper's evaluation algorithms — basic, e-basic, e-MQO, q-sharing,
  o-sharing and probabilistic top-k — plus the shared-execution batch API
  ``evaluate_many`` (:mod:`repro.core`),
* the paper's query workload and parameterised workload generators
  (:mod:`repro.workloads`), and
* the benchmark harness regenerating the paper's figures and tables
  (:mod:`repro.bench`).

Quickstart::

    from repro import build_scenario, evaluate
    from repro.workloads import paper_query

    scenario = build_scenario(target="Excel", h=100, scale=0.05)
    query = paper_query("Q1", scenario.target_schema)
    result = evaluate(
        query, scenario.mappings, scenario.database,
        method="o-sharing", links=scenario.links,
    )
    print(result.answers.pretty())
"""

from repro.core import (
    BatchResult,
    EvaluationResult,
    Evaluator,
    ProbabilisticAnswer,
    SchemaLinks,
    TargetQuery,
    evaluate,
    evaluate_many,
    evaluate_top_k,
    make_evaluator,
)
from repro.datagen import MatchingScenario, build_scenario
from repro.matching import Mapping, MappingSet, generate_possible_mappings, match_schemas
from repro.relational import Database, Relation

__version__ = "1.0.0"

__all__ = [
    "BatchResult",
    "EvaluationResult",
    "Evaluator",
    "ProbabilisticAnswer",
    "SchemaLinks",
    "TargetQuery",
    "evaluate",
    "evaluate_many",
    "evaluate_top_k",
    "make_evaluator",
    "MatchingScenario",
    "build_scenario",
    "Mapping",
    "MappingSet",
    "generate_possible_mappings",
    "match_schemas",
    "Database",
    "Relation",
    "__version__",
]
