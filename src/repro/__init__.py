"""repro — a reproduction of *Evaluating Probabilistic Queries over Uncertain
Matching* (Cheng, Gong, Cheung and Cheng, ICDE 2012).

The library evaluates probabilistic queries issued against a *target* schema
whose relationship to a *source* database is captured by a set of *possible
mappings* with probabilities.  It contains:

* an in-memory relational engine (:mod:`repro.relational`),
* a schema-matching substrate producing possible mappings
  (:mod:`repro.matching`),
* a deterministic purchase-order data generator and ready-made experiment
  scenarios (:mod:`repro.datagen`),
* the paper's evaluation algorithms — basic, e-basic, e-MQO, q-sharing,
  o-sharing and probabilistic top-k — plus the shared-execution batch API
  ``evaluate_many`` (:mod:`repro.core`),
* the anytime subsystem: budgeted queries with sound, resumable per-tuple
  probability intervals (:mod:`repro.anytime`, ``method="anytime"``),
* the paper's query workload and parameterised workload generators
  (:mod:`repro.workloads`), and
* the benchmark harness regenerating the paper's figures and tables
  (:mod:`repro.bench`).

Quickstart (session-first)::

    from repro import build_scenario, connect
    from repro.workloads import paper_query

    scenario = build_scenario(target="Excel", h=100, scale=0.05)
    with connect(scenario) as session:
        result = session.query(paper_query("Q1", scenario.target_schema))
        print(result.answers.pretty())

A :class:`Session` owns all cross-query state (plan cache, statistics
catalog, optimizer memo, worker pools) so repeated queries stop paying for
work already done; how queries execute is an :class:`ExecutionPolicy`.  The
legacy one-shot helpers ``evaluate``/``evaluate_many``/``evaluate_top_k``
remain as deprecated shims over a throwaway session.
"""

from repro.anytime import AnytimeResult, Budget, IntervalAnswer
from repro.core import (
    BatchResult,
    EvaluationResult,
    Evaluator,
    ProbabilisticAnswer,
    SchemaLinks,
    TargetQuery,
    evaluate,
    evaluate_many,
    evaluate_top_k,
    make_evaluator,
)
from repro.datagen import MatchingScenario, build_scenario
from repro.matching import Mapping, MappingSet, generate_possible_mappings, match_schemas
from repro.policy import ExecutionPolicy
from repro.relational import Database, Relation
from repro.session import Session, SessionStats, connect

__version__ = "1.0.0"

__all__ = [
    "Session",
    "SessionStats",
    "ExecutionPolicy",
    "connect",
    "AnytimeResult",
    "Budget",
    "IntervalAnswer",
    "BatchResult",
    "EvaluationResult",
    "Evaluator",
    "ProbabilisticAnswer",
    "SchemaLinks",
    "TargetQuery",
    "evaluate",
    "evaluate_many",
    "evaluate_top_k",
    "make_evaluator",
    "MatchingScenario",
    "build_scenario",
    "Mapping",
    "MappingSet",
    "generate_possible_mappings",
    "match_schemas",
    "Database",
    "Relation",
    "__version__",
]
